// Package dnsio moves DNS messages between clients and servers. It provides:
//
//   - Client: a query engine with ID generation, response validation, UDP
//     truncation fallback to TCP, and bounded retries.
//   - Transport: the byte-moving abstraction under Client, with two
//     implementations — SimTransport over the internal/simnet fabric, and
//     NetTransport over real UDP/TCP sockets from the net package.
//   - Server / SimService: the serving side, adapting a Responder to real
//     sockets or the fabric, including EDNS0-aware UDP truncation.
//
// URHunter runs its measurement sweeps over SimTransport; the examples and
// integration tests also exercise NetTransport against loopback sockets so
// the codec is proven over a genuine network path.
package dnsio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dns"
	"repro/internal/simnet"
)

// DNSPort is the standard DNS service port.
const DNSPort = 53

// simTCPPortOffset separates the fabric endpoint carrying TCP-semantics
// exchanges from the UDP-semantics endpoint on the same IP.
const simTCPPortOffset = 10000

// Transport moves one packed DNS message to a server and returns the packed
// response. tcp selects reliable (no truncation) semantics.
type Transport interface {
	Exchange(ctx context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error)
}

// Errors returned by the client.
var (
	ErrIDMismatch       = errors.New("dnsio: response ID does not match query")
	ErrQuestionMismatch = errors.New("dnsio: response question does not match query")
	ErrNotResponse      = errors.New("dnsio: message is not a response")
)

// Client issues DNS queries over a Transport.
type Client struct {
	Transport Transport
	// Retries is the number of additional attempts after a transient failure
	// (timeout, spoofed or malformed response). Permanent failures — an
	// unreachable endpoint, a refused TCP dial — return after the first
	// attempt regardless. Negative values behave like zero: the query is
	// always attempted once.
	Retries int
	// Timeout bounds each attempt when the context has no deadline.
	Timeout time.Duration
	// Backoff schedules the pause before each retry. On the sim fabric the
	// pause is booked on the virtual clock (no real sleep); on real sockets
	// it is a timer. The zero value disables backoff; NewClient installs
	// DefaultBackoff.
	Backoff BackoffPolicy
	// Breakers is the per-server circuit-breaker set, shared by every worker
	// using this client: after Threshold consecutive failed exchanges to one
	// server, further queries fail fast with ErrCircuitOpen until a half-open
	// probe succeeds. nil disables breaking; NewClient installs the default.
	Breakers *BreakerSet

	// idState drives the query-ID generator: a splitmix64 counter advanced
	// with a single atomic add, so concurrent sweep workers sharing one
	// client never serialize on ID generation.
	idState atomic.Uint64
}

// NewClient builds a client with sane defaults over the given transport.
func NewClient(t Transport) *Client {
	c := &Client{
		Transport: t,
		Retries:   2,
		Timeout:   3 * time.Second,
		Backoff:   DefaultBackoff(),
		Breakers:  NewBreakerSet(DefaultBreakerConfig()),
	}
	c.idState.Store(uint64(time.Now().UnixNano()))
	return c
}

// SeedIDs makes query-ID generation deterministic (for tests).
func (c *Client) SeedIDs(seed int64) {
	c.idState.Store(uint64(seed))
}

func (c *Client) nextID() uint16 {
	// splitmix64 finalizer over an atomically advanced Weyl sequence.
	x := c.idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return uint16(x)
}

// queryPool recycles query messages on both sides of an exchange. A query
// message is dead as soon as Exchange returns (responses are separate
// messages), and on the serve path no Responder retains the decoded query
// past HandleQuery (replies are built via q.Reply, which copies the question
// section), so each sweep worker effectively reuses one message instead of
// allocating ~36M of them across a paper-scale run.
var queryPool = sync.Pool{New: func() any { return new(dns.Message) }}

// Query sends a (name, type) question to server and returns the validated
// response.
func (c *Client) Query(ctx context.Context, server netip.AddrPort, name dns.Name, t dns.Type) (*dns.Message, error) {
	q := queryPool.Get().(*dns.Message)
	q.Header = dns.Header{ID: c.nextID(), RecursionDesired: true}
	q.Questions = append(q.Questions[:0], dns.Question{Name: name, Type: t, Class: dns.ClassINET})
	q.Answers, q.Authority, q.Additional = q.Answers[:0], q.Authority[:0], q.Additional[:0]
	resp, _, err := c.exchange(ctx, server, q)
	queryPool.Put(q)
	return resp, err
}

// QueryWire is Query plus the validated response's wire bytes — the exact
// form the server sent them, so a caller that will journal the answer avoids
// re-packing it (and, at 36M probes a sweep, re-copying it). The returned
// slice is only guaranteed until this client's next exchange on the same
// goroutine; callers that keep it longer must copy.
func (c *Client) QueryWire(ctx context.Context, server netip.AddrPort, name dns.Name, t dns.Type) (*dns.Message, []byte, error) {
	q := queryPool.Get().(*dns.Message)
	q.Header = dns.Header{ID: c.nextID(), RecursionDesired: true}
	q.Questions = append(q.Questions[:0], dns.Question{Name: name, Type: t, Class: dns.ClassINET})
	q.Answers, q.Authority, q.Additional = q.Answers[:0], q.Authority[:0], q.Additional[:0]
	resp, raw, err := c.exchange(ctx, server, q)
	queryPool.Put(q)
	if err != nil {
		return nil, nil, err
	}
	return resp, raw, nil
}

// packBufPool recycles query wire buffers across Exchange calls; transports
// never retain the packed bytes past their Exchange call, so the buffer can
// go back in the pool as soon as the attempt loop ends.
var packBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// Exchange sends a prepared query. If the UDP response has TC set, the query
// is retried over TCP, mirroring standard resolver behaviour.
func (c *Client) Exchange(ctx context.Context, server netip.AddrPort, q *dns.Message) (*dns.Message, error) {
	resp, _, err := c.exchange(ctx, server, q)
	return resp, err
}

// exchange is Exchange returning the accepted response's wire bytes as well.
// The returned slice is only valid until the transport's next exchange —
// callers that keep it (QueryWire) must copy.
func (c *Client) exchange(ctx context.Context, server netip.AddrPort, q *dns.Message) (*dns.Message, []byte, error) {
	if q.Header.ID == 0 {
		q.Header.ID = c.nextID()
	}
	bp := packBufPool.Get().(*[]byte)
	packed, err := q.AppendPack((*bp)[:0])
	if err != nil {
		packBufPool.Put(bp)
		return nil, nil, fmt.Errorf("dnsio: pack query: %w", err)
	}
	*bp = packed // keep any grown capacity for the next user
	defer packBufPool.Put(bp)
	// Deadline management only matters for transports that can block on
	// real I/O; the in-memory fabric completes synchronously.
	if c.Timeout > 0 && !isInstant(c.Transport) {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.Timeout)
			defer cancel()
		}
	}
	var br *breaker
	if c.Breakers != nil {
		br = c.Breakers.forAddr(server.Addr())
		if !br.allow(c.Breakers.cfg) {
			return nil, nil, fmt.Errorf("dnsio: exchange with %s failed: %w", server, ErrCircuitOpen)
		}
	}
	// Retries < 0 must still attempt once: an empty attempt loop would
	// otherwise report a useless "failed: %!w(<nil>)".
	retries := c.Retries
	if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if br != nil && lastErr != nil {
				br.report(c.Breakers, false)
			}
			return nil, nil, err
		}
		if attempt > 0 {
			if err := c.sleep(ctx, c.Backoff.Delay(server, attempt)); err != nil {
				break
			}
		}
		raw, err := c.Transport.Exchange(ctx, server, packed, false)
		if err != nil {
			lastErr = err
			if IsPermanent(err) {
				break
			}
			continue
		}
		resp, err := c.validate(q, raw)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.Truncated {
			raw, err = c.Transport.Exchange(ctx, server, packed, true)
			if err != nil {
				lastErr = err
				if IsPermanent(err) {
					break
				}
				continue
			}
			if resp, err = c.validate(q, raw); err != nil {
				lastErr = err
				continue
			}
		}
		if br != nil {
			br.report(c.Breakers, true)
		}
		return resp, raw, nil
	}
	if br != nil {
		br.report(c.Breakers, false)
	}
	if lastErr == nil {
		lastErr = errors.New("no attempt completed")
	}
	return nil, nil, fmt.Errorf("dnsio: exchange with %s failed: %w", server, lastErr)
}

func (c *Client) validate(q *dns.Message, raw []byte) (*dns.Message, error) {
	resp, err := dns.Unpack(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if !resp.Header.Response {
		return nil, ErrNotResponse
	}
	if resp.Header.ID != q.Header.ID {
		return nil, ErrIDMismatch
	}
	if len(resp.Questions) > 0 && resp.Question() != q.Question() {
		return nil, ErrQuestionMismatch
	}
	return resp, nil
}

// Responder is the server-side query handler.
type Responder interface {
	HandleQuery(src netip.Addr, q *dns.Message) *dns.Message
}

// ResponderFunc adapts a function to Responder.
type ResponderFunc func(src netip.Addr, q *dns.Message) *dns.Message

// HandleQuery implements Responder.
func (f ResponderFunc) HandleQuery(src netip.Addr, q *dns.Message) *dns.Message {
	return f(src, q)
}

// Via values naming the transport that carried a query to a server.
const (
	ViaUDP = "udp"
	ViaTCP = "tcp"
	ViaDoT = "dot"
	ViaDoH = "doh"
)

// ViaResponder is the optional interface a Responder implements to learn
// which transport carried each query (the Via* constants). Front-ends that
// keep per-transport counters — urwatchd's /metrics — implement it; every
// serve path falls back to plain HandleQuery when it is absent.
type ViaResponder interface {
	HandleQueryVia(src netip.Addr, q *dns.Message, via string) *dns.Message
}

// dispatchQuery routes one decoded query to the responder, tagging the
// carrying transport when the responder cares.
func dispatchQuery(r Responder, src netip.Addr, q *dns.Message, via string) *dns.Message {
	if vr, ok := r.(ViaResponder); ok {
		return vr.HandleQueryVia(src, q, via)
	}
	return r.HandleQuery(src, q)
}

// udpPayloadSize extracts the EDNS0-advertised payload size from a query,
// defaulting to the classic 512 octets.
func udpPayloadSize(q *dns.Message) int {
	for _, rr := range q.Additional {
		if rr.Type() == dns.TypeOPT {
			size := int(rr.Class)
			if size < dns.MaxUDPSize {
				size = dns.MaxUDPSize
			}
			if size > dns.MaxEDNS0Size {
				size = dns.MaxEDNS0Size
			}
			return size
		}
	}
	return dns.MaxUDPSize
}

// serveBytes is the shared serve path: unpack, dispatch, pack (honouring UDP
// truncation when tcp is false). Malformed queries yield FORMERR when the
// header survives, nothing otherwise.
func serveBytes(r Responder, src netip.Addr, raw []byte, tcp bool) []byte {
	via := ViaUDP
	if tcp {
		via = ViaTCP
	}
	return ServeRaw(r, src, raw, via)
}

// ServeRaw runs one raw query through the serve path for the named transport:
// unpack, dispatch (tagging via for ViaResponder implementations), pack. UDP
// answers honour the EDNS0 payload size and truncate; every other transport
// is stream- or HTTP-framed, so responses pack whole. The DoT and DoH
// front-ends in internal/transport call this directly.
func ServeRaw(r Responder, src netip.Addr, raw []byte, via string) []byte {
	q := queryPool.Get().(*dns.Message)
	defer queryPool.Put(q)
	if err := q.UnpackFrom(raw); err != nil {
		if len(raw) >= 12 {
			bad := &dns.Message{}
			bad.Header.ID = uint16(raw[0])<<8 | uint16(raw[1])
			bad.Header.Response = true
			bad.Header.RCode = dns.RCodeFormat
			out, _ := bad.Pack()
			return out
		}
		return nil
	}
	resp := dispatchQuery(r, src, q, via)
	if resp == nil {
		return nil
	}
	var out []byte
	var err error
	if via == ViaUDP {
		out, err = resp.PackTruncated(udpPayloadSize(q))
	} else {
		out, err = resp.Pack()
	}
	if err != nil {
		fail := q.Reply()
		fail.Header.RCode = dns.RCodeServFail
		out, _ = fail.Pack()
	}
	return out
}

// AttachSim registers a responder on the fabric at addr:53 (UDP semantics)
// and the paired reliable endpoint (TCP semantics). It returns a detach
// function.
func AttachSim(f *simnet.Fabric, addr netip.Addr, r Responder) (func(), error) {
	udp := simnet.Endpoint{Addr: addr, Port: DNSPort}
	tcp := simnet.Endpoint{Addr: addr, Port: DNSPort + simTCPPortOffset}
	uh := simnet.HandlerFunc(func(src netip.Addr, raw []byte) []byte {
		return serveBytes(r, src, raw, false)
	})
	th := simnet.HandlerFunc(func(src netip.Addr, raw []byte) []byte {
		return serveBytes(r, src, raw, true)
	})
	if err := f.Listen(udp, uh); err != nil {
		return nil, err
	}
	if err := f.Listen(tcp, th); err != nil {
		f.Unlisten(udp)
		return nil, err
	}
	return func() {
		f.Unlisten(udp)
		f.Unlisten(tcp)
	}, nil
}

// instantTransport marks transports that never block on real I/O, letting
// the client skip per-query deadline plumbing.
type instantTransport interface {
	Instant() bool
}

func isInstant(t Transport) bool {
	it, ok := t.(instantTransport)
	return ok && it.Instant()
}

// IsInstant reports whether a transport completes exchanges synchronously,
// never blocking on real I/O (the in-memory fabric). Callers use it to skip
// stall-detection machinery that only matters on real sockets.
func IsInstant(t Transport) bool { return isInstant(t) }

// SimTransport is a Transport over the fabric.
type SimTransport struct {
	Fabric *simnet.Fabric
	// Src is the client's IP on the fabric.
	Src netip.Addr
}

// Instant implements instantTransport: fabric exchanges are synchronous
// function calls.
func (t *SimTransport) Instant() bool { return true }

// Exchange implements Transport.
func (t *SimTransport) Exchange(_ context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error) {
	ep := simnet.Endpoint{Addr: server.Addr(), Port: server.Port()}
	if tcp {
		ep.Port += simTCPPortOffset
		return t.Fabric.ExchangeReliable(t.Src, ep, packed)
	}
	return t.Fabric.Exchange(t.Src, ep, packed, 0)
}

// NetTransport is a Transport over real UDP and TCP sockets.
type NetTransport struct {
	// DialTimeout bounds connection setup for TCP exchanges.
	DialTimeout time.Duration
}

// Exchange implements Transport.
func (t *NetTransport) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error) {
	if tcp {
		return t.exchangeTCP(ctx, server, packed)
	}
	return t.exchangeUDP(ctx, server, packed)
}

func (t *NetTransport) exchangeUDP(ctx context.Context, server netip.AddrPort, packed []byte) ([]byte, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if _, err := conn.Write(packed); err != nil {
		return nil, err
	}
	buf := make([]byte, dns.MaxEDNS0Size)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func (t *NetTransport) exchangeTCP(ctx context.Context, server netip.AddrPort, packed []byte) ([]byte, error) {
	d := net.Dialer{Timeout: t.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := writeTCPMessage(conn, packed); err != nil {
		return nil, err
	}
	return readTCPMessage(conn)
}

// WriteFrame writes the RFC 1035 §4.2.2 two-octet length prefix followed by
// the message — the stream framing shared by plain TCP and TLS-wrapped DoT
// (RFC 7858 §3.3 carries TCP framing unchanged over the TLS session).
func WriteFrame(w io.Writer, msg []byte) error {
	if len(msg) > dns.MaxMessageSize {
		return errors.New("dnsio: message too large for stream framing")
	}
	hdr := [2]byte{}
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadFrame reads one length-prefixed DNS message from a stream.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeTCPMessage and readTCPMessage keep the historical names alive for the
// package-internal call sites.
func writeTCPMessage(w io.Writer, msg []byte) error { return WriteFrame(w, msg) }
func readTCPMessage(r io.Reader) ([]byte, error)    { return ReadFrame(r) }
