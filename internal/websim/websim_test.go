package websim

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/simnet"
)

var probeSrc = netip.MustParseAddr("198.51.100.10")

func newWorld() *World {
	return NewWorld(simnet.New(1))
}

func TestProbeBusinessSiteWithCert(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.1")
	site := &Site{
		Addr: addr, Kind: KindBusiness, Title: "example.com",
		Cert: NewCert("example.com", "TrustedCA", "example.com", "www.example.com"),
	}
	if err := w.Install(site); err != nil {
		t.Fatal(err)
	}
	res := w.Probe(probeSrc, addr)
	if !res.Reachable || res.StatusCode != 200 {
		t.Fatalf("probe: %+v", res)
	}
	if !strings.Contains(res.Body, "example.com") {
		t.Errorf("body: %q", res.Body)
	}
	if res.Cert == nil || res.Cert.Subject != "example.com" || len(res.Cert.SANs) != 2 {
		t.Errorf("cert: %+v", res.Cert)
	}
	if res.Cert.Fingerprint != site.Cert.Fingerprint {
		t.Error("fingerprint mismatch")
	}
}

func TestProbeParkingKeywords(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.2")
	if err := w.Install(&Site{Addr: addr, Kind: KindParking, Title: "old-site.com"}); err != nil {
		t.Fatal(err)
	}
	res := w.Probe(probeSrc, addr)
	if !strings.Contains(strings.ToLower(res.Body), "parked") {
		t.Errorf("parking body lacks keyword: %q", res.Body)
	}
	if res.Cert != nil {
		t.Error("certless site returned a cert")
	}
}

func TestProbeRedirect(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.3")
	if err := w.Install(&Site{Addr: addr, Kind: KindRedirect, Title: "r.com",
		RedirectTo: "https://elsewhere.test/"}); err != nil {
		t.Fatal(err)
	}
	res := w.Probe(probeSrc, addr)
	if res.StatusCode != 302 {
		t.Errorf("status = %d", res.StatusCode)
	}
	if res.Location != "https://elsewhere.test/" {
		t.Errorf("location = %q", res.Location)
	}
	if !strings.Contains(strings.ToLower(res.Body), "redirecting") {
		t.Errorf("redirect body lacks keyword: %q", res.Body)
	}
}

func TestProbeProviderWarning(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.4")
	if err := w.Install(&Site{Addr: addr, Kind: KindProviderWarning, Title: "victim.com"}); err != nil {
		t.Fatal(err)
	}
	res := w.Probe(probeSrc, addr)
	low := strings.ToLower(res.Body)
	if !strings.Contains(low, "warning") || !strings.Contains(low, "not configured") {
		t.Errorf("warning body: %q", res.Body)
	}
}

func TestProbeUnreachable(t *testing.T) {
	w := newWorld()
	res := w.Probe(probeSrc, netip.MustParseAddr("93.99.99.99"))
	if res.Reachable {
		t.Error("unreachable address reported reachable")
	}
}

func TestProbeC2IsBland(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.5")
	if err := w.Install(&Site{Addr: addr, Kind: KindC2, Title: "c2"}); err != nil {
		t.Fatal(err)
	}
	res := w.Probe(probeSrc, addr)
	if res.StatusCode != 403 {
		t.Errorf("C2 status = %d", res.StatusCode)
	}
	for _, kw := range []string{"parked", "parking", "redirecting", "warning"} {
		if strings.Contains(strings.ToLower(res.Body), kw) {
			t.Errorf("C2 body contains exclusion keyword %q", kw)
		}
	}
}

func TestInstallKindNoneNoop(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.6")
	if err := w.Install(&Site{Addr: addr, Kind: KindNone}); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Site(addr); ok {
		t.Error("KindNone site registered")
	}
}

func TestInstallConflict(t *testing.T) {
	w := newWorld()
	addr := netip.MustParseAddr("93.10.0.7")
	if err := w.Install(&Site{Addr: addr, Kind: KindBusiness, Title: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Install(&Site{Addr: addr, Kind: KindBusiness, Title: "b"}); err == nil {
		t.Error("conflicting install accepted")
	}
}

func TestCertDeterministicFingerprint(t *testing.T) {
	a := NewCert("cn", "issuer", "san1")
	b := NewCert("cn", "issuer", "san1")
	c := NewCert("cn", "issuer", "san2")
	if a.Fingerprint != b.Fingerprint {
		t.Error("same identity, different fingerprints")
	}
	if a.Fingerprint == c.Fingerprint {
		t.Error("different identity, same fingerprint")
	}
}

func TestCertEncodeDecode(t *testing.T) {
	c := NewCert("example.com", "CA", "a.example.com", "b.example.com")
	got, err := decodeCert(c.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Subject != c.Subject || got.Issuer != c.Issuer ||
		len(got.SANs) != 2 || got.Fingerprint != c.Fingerprint {
		t.Errorf("decode = %+v", got)
	}
	noSAN := NewCert("x", "y")
	got, err = decodeCert(noSAN.encode())
	if err != nil || len(got.SANs) != 0 {
		t.Errorf("no-SAN decode: %+v %v", got, err)
	}
	if _, err := decodeCert([]byte("garbage")); err == nil {
		t.Error("garbage cert decoded")
	}
}

func TestHTTPMethodRejected(t *testing.T) {
	s := &Site{Kind: KindBusiness, Title: "x"}
	resp := s.serveHTTP(probeSrc, []byte("POST / HTTP/1.0\r\n\r\n"))
	if !strings.Contains(string(resp), "405") {
		t.Errorf("response: %q", resp)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindNone: "none", KindBusiness: "business", KindCDNEdge: "cdn-edge",
		KindParking: "parking", KindRedirect: "redirect",
		KindProviderWarning: "provider-warning", KindC2: "c2", KindMailServer: "mail",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCDNEdgeKindAndMailServer(t *testing.T) {
	w := newWorld()
	edge := netip.MustParseAddr("93.10.1.1")
	if err := w.Install(&Site{Addr: edge, Kind: KindCDNEdge, Title: "edge US",
		Cert: NewCert("*.cdn.provider.test", "Provider CA")}); err != nil {
		t.Fatal(err)
	}
	res := w.Probe(probeSrc, edge)
	if !res.Reachable || res.StatusCode != 200 || res.Cert == nil {
		t.Errorf("edge probe: %+v", res)
	}
	mail := netip.MustParseAddr("93.10.1.2")
	if err := w.Install(&Site{Addr: mail, Kind: KindMailServer, Title: "mx1"}); err != nil {
		t.Fatal(err)
	}
	res = w.Probe(probeSrc, mail)
	if !strings.Contains(res.Body, "Mail relay") {
		t.Errorf("mail body: %q", res.Body)
	}
	if site, ok := w.Site(edge); !ok || site.Kind != KindCDNEdge {
		t.Error("Site accessor failed")
	}
}
