// Package websim simulates the web-layer enrichment surface that URHunter
// probes for every IP address found in an undelegated A record: an HTTP
// responder (port 80) and a TLS certificate endpoint (port 443) per IP,
// served over the internal/simnet fabric.
//
// Substitution note (see DESIGN.md): the paper fetches real HTTP responses
// and TLS certificates. URHunter's classifier consumes only (a) keyword
// statistics from the HTTP body — "parked", "parking", "redirecting" — and
// (b) the certificate's identity (subject/issuer/SANs). The port-80 exchange
// here carries genuine HTTP/1.0 request and response bytes; the port-443
// exchange returns the certificate fields in a compact text encoding instead
// of performing a TLS handshake, which preserves exactly the information the
// classifier uses.
package websim

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"strconv"
	"strings"
	"sync"

	"repro/internal/simnet"
)

// Kind classifies what a site at an IP address is.
type Kind int

// Site kinds, mirroring the page categories URHunter's HTTP analysis
// distinguishes (§4.2, Appendix B).
const (
	// KindNone: nothing listens on the IP.
	KindNone Kind = iota
	// KindBusiness: a legitimate site for a specific domain.
	KindBusiness
	// KindCDNEdge: a CDN edge node serving a legitimate domain.
	KindCDNEdge
	// KindParking: a domain-parking page.
	KindParking
	// KindRedirect: a page that only redirects elsewhere.
	KindRedirect
	// KindProviderWarning: a hosting provider's protective/warning page for
	// unconfigured domains.
	KindProviderWarning
	// KindC2: attacker infrastructure; serves nothing meaningful.
	KindC2
	// KindMailServer: SMTP-focused host with a minimal web presence.
	KindMailServer
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindBusiness:
		return "business"
	case KindCDNEdge:
		return "cdn-edge"
	case KindParking:
		return "parking"
	case KindRedirect:
		return "redirect"
	case KindProviderWarning:
		return "provider-warning"
	case KindC2:
		return "c2"
	case KindMailServer:
		return "mail"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Cert carries the certificate identity fields Appendix B compares.
type Cert struct {
	Subject     string
	Issuer      string
	SANs        []string
	Fingerprint string
}

// NewCert builds a certificate with a deterministic fingerprint derived from
// its identity fields.
func NewCert(subject, issuer string, sans ...string) *Cert {
	h := fnv.New64a()
	h.Write([]byte(subject))
	h.Write([]byte{0})
	h.Write([]byte(issuer))
	for _, s := range sans {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return &Cert{
		Subject:     subject,
		Issuer:      issuer,
		SANs:        sans,
		Fingerprint: fmt.Sprintf("%016x", h.Sum64()),
	}
}

// encode renders the cert for the simulated port-443 exchange.
func (c *Cert) encode() []byte {
	return []byte(strings.Join([]string{
		c.Subject, c.Issuer, strings.Join(c.SANs, ","), c.Fingerprint,
	}, "\n"))
}

// decodeCert parses the port-443 payload.
func decodeCert(b []byte) (*Cert, error) {
	parts := strings.Split(string(b), "\n")
	if len(parts) != 4 {
		return nil, fmt.Errorf("websim: malformed cert payload (%d lines)", len(parts))
	}
	var sans []string
	if parts[2] != "" {
		sans = strings.Split(parts[2], ",")
	}
	return &Cert{Subject: parts[0], Issuer: parts[1], SANs: sans, Fingerprint: parts[3]}, nil
}

// Site is the web presence installed at one IP address.
type Site struct {
	Addr  netip.Addr
	Kind  Kind
	Title string
	// RedirectTo is the Location target for KindRedirect sites.
	RedirectTo string
	Cert       *Cert
}

// body renders the HTML body for the site's kind. The keyword phrasing is
// load-bearing: URHunter's parked/redirect exclusion greps for these terms.
func (s *Site) body() string {
	switch s.Kind {
	case KindParking:
		return fmt.Sprintf("<html><title>%s - parked</title><body>This domain is parked free, courtesy of the registrar. Buy this parked domain today.</body></html>", s.Title)
	case KindRedirect:
		return fmt.Sprintf("<html><title>%s</title><body>Redirecting you to %s ...</body></html>", s.Title, s.RedirectTo)
	case KindProviderWarning:
		return fmt.Sprintf("<html><title>Warning</title><body>Warning: the domain %s is not configured on this hosting service. If you are the owner, complete the delegation.</body></html>", s.Title)
	case KindBusiness, KindCDNEdge:
		return fmt.Sprintf("<html><title>%s</title><body>Welcome to %s. Products, services and contact information.</body></html>", s.Title, s.Title)
	case KindMailServer:
		return fmt.Sprintf("<html><title>%s</title><body>Mail relay node %s.</body></html>", s.Title, s.Title)
	case KindC2:
		return "<html><body>403</body></html>"
	}
	return ""
}

// statusCode returns the HTTP status the site answers with.
func (s *Site) statusCode() int {
	switch s.Kind {
	case KindRedirect:
		return 302
	case KindC2:
		return 403
	default:
		return 200
	}
}

// World installs sites on the fabric and probes them.
type World struct {
	fabric *simnet.Fabric

	mu    sync.RWMutex
	sites map[netip.Addr]*Site
}

// NewWorld wraps a fabric.
func NewWorld(f *simnet.Fabric) *World {
	return &World{fabric: f, sites: make(map[netip.Addr]*Site)}
}

// Install registers the site's HTTP endpoint (and TLS endpoint when a cert
// is present) on the fabric.
func (w *World) Install(s *Site) error {
	if s.Kind == KindNone {
		return nil
	}
	httpEP := simnet.Endpoint{Addr: s.Addr, Port: 80}
	if err := w.fabric.Listen(httpEP, simnet.HandlerFunc(s.serveHTTP)); err != nil {
		return err
	}
	if s.Cert != nil {
		tlsEP := simnet.Endpoint{Addr: s.Addr, Port: 443}
		if err := w.fabric.Listen(tlsEP, simnet.HandlerFunc(s.serveTLS)); err != nil {
			w.fabric.Unlisten(httpEP)
			return err
		}
	}
	w.mu.Lock()
	w.sites[s.Addr] = s
	w.mu.Unlock()
	return nil
}

// Site returns the installed site at an address, if any.
func (w *World) Site(addr netip.Addr) (*Site, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s, ok := w.sites[addr]
	return s, ok
}

// serveHTTP answers a minimal HTTP/1.0 GET.
func (s *Site) serveHTTP(_ netip.Addr, req []byte) []byte {
	line, _, _ := strings.Cut(string(req), "\r\n")
	if !strings.HasPrefix(line, "GET ") {
		return []byte("HTTP/1.0 405 Method Not Allowed\r\n\r\n")
	}
	body := s.body()
	var sb strings.Builder
	code := s.statusCode()
	fmt.Fprintf(&sb, "HTTP/1.0 %d %s\r\n", code, statusText(code))
	if s.Kind == KindRedirect {
		fmt.Fprintf(&sb, "Location: %s\r\n", s.RedirectTo)
	}
	fmt.Fprintf(&sb, "Content-Type: text/html\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	return []byte(sb.String())
}

// serveTLS answers the simulated certificate fetch.
func (s *Site) serveTLS(_ netip.Addr, req []byte) []byte {
	if string(req) != "CERT?" {
		return nil
	}
	return s.Cert.encode()
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 302:
		return "Found"
	case 403:
		return "Forbidden"
	default:
		return "Status"
	}
}

// ProbeResult is what URHunter's collector records for an IP address.
type ProbeResult struct {
	Reachable  bool
	StatusCode int
	Body       string
	Location   string
	Cert       *Cert
}

// Probe fetches the HTTP response and certificate of an address, as
// URHunter's response-collection stage does for every undelegated A record.
func (w *World) Probe(src, addr netip.Addr) ProbeResult {
	var res ProbeResult
	req := []byte("GET / HTTP/1.0\r\nHost: probe\r\n\r\n")
	raw, err := w.fabric.ExchangeReliable(src, simnet.Endpoint{Addr: addr, Port: 80}, req)
	if err == nil {
		res.Reachable = true
		res.StatusCode, res.Location, res.Body = parseHTTP(raw)
	}
	cert, err := w.fabric.ExchangeReliable(src, simnet.Endpoint{Addr: addr, Port: 443}, []byte("CERT?"))
	if err == nil {
		if c, cerr := decodeCert(cert); cerr == nil {
			res.Cert = c
			res.Reachable = true
		}
	}
	return res
}

// parseHTTP extracts status code, Location header, and body.
func parseHTTP(raw []byte) (code int, location, body string) {
	head, b, found := strings.Cut(string(raw), "\r\n\r\n")
	if found {
		body = b
	}
	lines := strings.Split(head, "\r\n")
	if len(lines) > 0 {
		fields := strings.Fields(lines[0])
		if len(fields) >= 2 {
			if c, err := strconv.Atoi(fields[1]); err == nil {
				code = c
			}
		}
	}
	for _, l := range lines[1:] {
		if v, ok := strings.CutPrefix(l, "Location: "); ok {
			location = v
		}
	}
	return code, location, body
}
