package hosting

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/psl"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/websim"
	"repro/internal/zone"
)

type world struct {
	fabric *simnet.Fabric
	ipdb   *ipam.DB
	reg    *registry.Registry
	list   *psl.List
	web    *websim.World
	client *dnsio.Client
	src    netip.Addr
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{fabric: simnet.New(1), ipdb: ipam.New(), list: psl.Default()}
	var err error
	w.reg, err = registry.New(w.fabric, w.ipdb, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tld := range []dns.Name{"com", "net", "test", "cn", "gov.cn"} {
		if err := w.reg.CreateTLD(tld, 1); err != nil {
			t.Fatal(err)
		}
	}
	w.web = websim.NewWorld(w.fabric)
	asn := w.ipdb.RegisterAS("TEST-CLIENT", "US", 1)
	w.src = w.ipdb.MustAllocate(asn)
	w.client = dnsio.NewClient(&dnsio.SimTransport{Fabric: w.fabric, Src: w.src})
	w.client.SeedIDs(3)
	return w
}

func (w *world) deps(seed int64) Deps {
	return Deps{
		Fabric: w.fabric, IPDB: w.ipdb, Registry: w.reg, PSL: w.list,
		Web: w.web, Roots: []netip.Addr{w.reg.RootAddr()}, Country: "US", Seed: seed,
	}
}

func (w *world) mustProvider(t *testing.T, pol Policy) *Provider {
	t.Helper()
	p, err := NewProvider(pol, w.deps(7))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// registerDomain delegates a domain to a dummy legitimate nameserver.
func (w *world) registerDomain(t *testing.T, domain dns.Name) {
	t.Helper()
	if err := w.reg.SetDelegation(domain, []dns.Name{"ns1.legit-host.net"}, nil,
		time.Now().AddDate(-1, 0, 0)); err != nil {
		t.Fatal(err)
	}
}

func (w *world) queryNS(t *testing.T, ns *Nameserver, name dns.Name, qtype dns.Type) *dns.Message {
	t.Helper()
	resp, err := w.client.Query(context.Background(),
		netip.AddrPortFrom(ns.Addr, dnsio.DNSPort), name, qtype)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestProviderStandup(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetClouDNS())
	if got := len(p.Nameservers()); got != 8 {
		t.Fatalf("nameservers = %d", got)
	}
	// The provider's infra domain is delegated and its NS hostnames resolve
	// authoritatively from its own servers.
	ns := p.Nameservers()[0]
	resp := w.queryNS(t, ns, ns.Host, dns.TypeA)
	if len(resp.AnswersOfType(dns.TypeA)) != 1 {
		t.Errorf("infra NS A answers: %v", resp.Answers)
	}
	if !w.reg.IsDelegatedTo(p.InfraDomain, ns.Host) {
		t.Error("infra domain not delegated")
	}
}

func TestUndelegatedRecordEndToEnd(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "victim.com") // delegated elsewhere
	p := w.mustProvider(t, PresetClouDNS())
	attacker := p.OpenAccount("attacker", false)
	hz, err := p.CreateZone(attacker.ID, "victim.com")
	if err != nil {
		t.Fatalf("attacker blocked: %v", err)
	}
	if !hz.Served() {
		t.Fatal("zone not served")
	}
	hz.Zone.MustAddRR("victim.com 300 IN A 66.66.1.1")
	hz.Zone.MustAddRR(`victim.com 300 IN TXT "cmd:connect 66.66.1.1:443"`)

	// The UR is live on the provider's NS even though the TLD delegates the
	// domain elsewhere.
	resp := w.queryNS(t, hz.NS[0], "victim.com", dns.TypeA)
	if got := resp.AnswersOfType(dns.TypeA); len(got) != 1 || got[0].Data.(*dns.A).Addr.String() != "66.66.1.1" {
		t.Errorf("UR answers: %v", resp.Answers)
	}
	if w.reg.IsDelegatedTo("victim.com", hz.NS[0].Host) {
		t.Error("domain should NOT be delegated to the provider")
	}
}

func TestReservedListBlocks(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetCloudflare())
	p.OpenAccount("a", false)
	_, err := p.CreateZone("a", "google.com")
	reason, ok := IsRefusal(err)
	if !ok || reason != RefusedReserved {
		t.Errorf("err = %v", err)
	}
}

func TestCategoryPolicies(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "registered.com")

	baidu := w.mustProvider(t, PresetBaidu())
	baidu.OpenAccount("a", false)
	// Baidu: no subdomains, no unregistered.
	if _, err := baidu.CreateZone("a", "api.registered.com"); err == nil {
		t.Error("Baidu accepted a subdomain")
	}
	if _, err := baidu.CreateZone("a", "neverregistered.com"); err == nil {
		t.Error("Baidu accepted an unregistered domain")
	}
	if _, err := baidu.CreateZone("a", "registered.com"); err != nil {
		t.Errorf("Baidu refused a registered SLD: %v", err)
	}
	if _, err := baidu.CreateZone("a", "gov.cn"); err != nil {
		t.Errorf("Baidu refused an eTLD: %v", err)
	}

	amazon, err := NewProvider(PresetAmazon(), w.deps(8))
	if err != nil {
		t.Fatal(err)
	}
	amazon.OpenAccount("b", false)
	if _, err := amazon.CreateZone("b", "neverregistered.com"); err != nil {
		t.Errorf("Amazon refused an unregistered domain: %v", err)
	}
}

func TestSubdomainNeedsPaid(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "site.com")
	cf := w.mustProvider(t, PresetCloudflare())
	cf.OpenAccount("free", false)
	cf.OpenAccount("paid", true)
	_, err := cf.CreateZone("free", "api.site.com")
	if reason, ok := IsRefusal(err); !ok || reason != RefusedSubdomainPaid {
		t.Errorf("free-account subdomain: %v", err)
	}
	if _, err := cf.CreateZone("paid", "api.site.com"); err != nil {
		t.Errorf("paid-account subdomain refused: %v", err)
	}
}

func TestDuplicateRules(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "dup.com")

	// ClouDNS: no duplicates at all.
	cd := w.mustProvider(t, PresetClouDNS())
	cd.OpenAccount("a", false)
	cd.OpenAccount("b", false)
	if _, err := cd.CreateZone("a", "dup.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := cd.CreateZone("a", "dup.com"); err == nil {
		t.Error("ClouDNS allowed single-user duplicate")
	}
	if _, err := cd.CreateZone("b", "dup.com"); err == nil {
		t.Error("ClouDNS allowed cross-user duplicate")
	}

	// Cloudflare: cross-user duplicates with distinct NS sets.
	cf, err := NewProvider(PresetCloudflare(), w.deps(9))
	if err != nil {
		t.Fatal(err)
	}
	cf.OpenAccount("owner", false)
	cf.OpenAccount("attacker", false)
	z1, err := cf.CreateZone("owner", "dup.com")
	if err != nil {
		t.Fatal(err)
	}
	z2, err := cf.CreateZone("attacker", "dup.com")
	if err != nil {
		t.Fatalf("Cloudflare refused cross-user duplicate: %v", err)
	}
	for _, ns1 := range z1.NS {
		for _, ns2 := range z2.NS {
			if ns1 == ns2 {
				t.Error("same nameserver assigned to both users for one domain")
			}
		}
	}
	if _, err := cf.CreateZone("owner", "dup.com"); err == nil {
		t.Error("Cloudflare allowed single-user duplicate")
	}
}

func TestAmazonExhaustionAttack(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "target.com")
	pol := PresetAmazon()
	pol.ServerCount = 12 // 12 servers, 4 per zone -> 3 zones exhaust the pool
	am, err := NewProvider(pol, w.deps(10))
	if err != nil {
		t.Fatal(err)
	}
	am.OpenAccount("attacker", false)
	created := 0
	for i := 0; i < 10; i++ {
		if _, err := am.CreateZone("attacker", "target.com"); err != nil {
			reason, ok := IsRefusal(err)
			if !ok || reason != RefusedExhausted {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		created++
	}
	if created != 3 {
		t.Errorf("created %d zones before exhaustion, want 3", created)
	}
	// The legitimate owner can no longer host their own domain.
	am.OpenAccount("owner", false)
	if _, err := am.CreateZone("owner", "target.com"); err == nil {
		t.Error("owner could still host after exhaustion")
	}
}

func TestNSDelegationVerificationBlocksAttacker(t *testing.T) {
	w := newWorld(t)
	pol := PostDisclosure(PresetTencent(), nil)
	if pol.Verification != VerifyNSDelegation || pol.ServeUnverified {
		t.Fatal("post-disclosure Tencent policy wrong")
	}
	p, err := NewProvider(pol, w.deps(11))
	if err != nil {
		t.Fatal(err)
	}
	w.registerDomain(t, "victim.com")
	p.OpenAccount("attacker", false)
	hz, err := p.CreateZone("attacker", "victim.com")
	if err != nil {
		t.Fatal(err)
	}
	if hz.Verified || hz.Served() {
		t.Error("unverified attacker zone is served")
	}
	resp := w.queryNS(t, hz.NS[0], "victim.com", dns.TypeA)
	if resp.Header.RCode == dns.RCodeSuccess && len(resp.Answers) > 0 {
		t.Error("attacker UR resolvable despite verification")
	}

	// A legitimate owner who already delegated to the assigned NS passes.
	// (Simulate: delegate owned.com to the account's assigned servers first.)
	p.OpenAccount("owner", false)
	w.registerDomain(t, "probe-own.com")
	probe, err := p.CreateZone("owner", "probe-own.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.reg.SetDelegation("owned.com", probe.NSHosts(), nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	hz2, err := p.CreateZone("owner", "owned.com")
	if err != nil {
		t.Fatal(err)
	}
	if !hz2.Verified || !hz2.Served() {
		t.Error("legit pre-delegated zone not served")
	}
}

func TestTXTChallengeVerification(t *testing.T) {
	w := newWorld(t)
	pol := PostDisclosure(PresetAlibaba(), nil)
	if pol.Verification != VerifyTXTChallenge {
		t.Fatal("post-disclosure Alibaba policy wrong")
	}
	pol.ServeUnverified = false // strict variant for this test
	p, err := NewProvider(pol, w.deps(12))
	if err != nil {
		t.Fatal(err)
	}

	// Legit owner: runs their real zone on a separate authoritative server.
	ownASN := w.ipdb.RegisterAS("OWNER-DNS", "DE", 1)
	ownNS := w.ipdb.MustAllocate(ownASN)
	ownSrv := authority.NewServer()
	ownZone := zone.New("mydomain.com")
	ownZone.MustAddRR("mydomain.com 3600 IN SOA ns1.mydomain.com h.mydomain.com 1 7200 3600 1209600 300")
	ownZone.MustAddRR("ns1.mydomain.com 3600 IN A " + ownNS.String())
	if err := ownSrv.AddZone(ownZone); err != nil {
		t.Fatal(err)
	}
	if _, err := dnsio.AttachSim(w.fabric, ownNS, ownSrv); err != nil {
		t.Fatal(err)
	}
	if err := w.reg.SetDelegation("mydomain.com", []dns.Name{"ns1.mydomain.com"},
		map[dns.Name]netip.Addr{"ns1.mydomain.com": ownNS}, time.Now()); err != nil {
		t.Fatal(err)
	}

	p.OpenAccount("owner", false)
	hz, err := p.CreateZone("owner", "mydomain.com")
	if err != nil {
		t.Fatal(err)
	}
	if hz.Served() {
		t.Fatal("zone served before TXT verification")
	}
	// Owner publishes the challenge in their REAL zone; verification passes.
	ownZone.MustAddRR(`_urhunter-challenge.mydomain.com 60 IN TXT "` + hz.Challenge + `"`)
	ok, err := p.CompleteTXTVerification(context.Background(), hz)
	if err != nil || !ok {
		t.Fatalf("verification failed: %v %v", ok, err)
	}
	if !hz.Served() {
		t.Error("zone not served after verification")
	}

	// Attacker cannot publish the token for a domain they don't control.
	w.registerDomain(t, "victim.com")
	p.OpenAccount("attacker", false)
	hz2, err := p.CreateZone("attacker", "victim.com")
	if err != nil {
		t.Fatal(err)
	}
	ok, _ = p.CompleteTXTVerification(context.Background(), hz2)
	if ok || hz2.Served() {
		t.Error("attacker passed TXT verification")
	}
}

func TestRetrievalEvictsAttacker(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "victim.com")
	p := w.mustProvider(t, PresetTencent())
	p.OpenAccount("attacker", false)
	p.OpenAccount("owner", false)
	hz, err := p.CreateZone("attacker", "victim.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Retrieve("victim.com", "owner", false); err == nil {
		t.Error("retrieval without ownership proof succeeded")
	}
	if err := p.Retrieve("victim.com", "owner", true); err != nil {
		t.Fatal(err)
	}
	if hz.Served() {
		t.Error("attacker zone still served after retrieval")
	}
	if len(p.ZonesFor("victim.com")) != 0 {
		t.Error("attacker zone still listed")
	}
	// Godaddy has no retrieval.
	gd, err := NewProvider(PresetGodaddy(), w.deps(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := gd.Retrieve("victim.com", "owner", true); err == nil {
		t.Error("Godaddy retrieval should not exist")
	}
}

func TestProtectiveRecords(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetClouDNS())
	ns := p.Nameservers()[0]
	resp := w.queryNS(t, ns, "unhosted-domain.com", dns.TypeA)
	got := resp.AnswersOfType(dns.TypeA)
	if len(got) != 1 || got[0].Data.(*dns.A).Addr != p.ProtectiveAddr() {
		t.Fatalf("protective A: %v", resp.Answers)
	}
	respTXT := w.queryNS(t, ns, "unhosted-domain.com", dns.TypeTXT)
	gotTXT := respTXT.AnswersOfType(dns.TypeTXT)
	if len(gotTXT) != 1 || gotTXT[0].Data.(*dns.TXT).Joined() != p.ProtectiveTXT() {
		t.Fatalf("protective TXT: %v", respTXT.Answers)
	}
	// The protective site serves a warning page.
	probe := w.web.Probe(w.src, p.ProtectiveAddr())
	if !probe.Reachable || probe.StatusCode != 200 {
		t.Errorf("protective site probe: %+v", probe)
	}
	// A provider without protective records refuses.
	gd, err := NewProvider(PresetGodaddy(), w.deps(14))
	if err != nil {
		t.Fatal(err)
	}
	resp = w.queryNS(t, gd.Nameservers()[0], "unhosted-domain.com", dns.TypeA)
	if resp.Header.RCode != dns.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestGeoDistributedAnswers(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "cdn-site.com")
	cf := w.mustProvider(t, PresetCloudflare())
	cf.OpenAccount("owner", false)
	hz, err := cf.CreateZone("owner", "cdn-site.com")
	if err != nil {
		t.Fatal(err)
	}
	hz.Zone.MustAddRR("cdn-site.com 300 IN A 99.99.99.99") // placeholder origin
	cf.MarkGeoDistributed(hz)

	// Clients in different countries see different edges.
	usASN := w.ipdb.RegisterAS("US-EYEBALL", "US", 1)
	deASN := w.ipdb.RegisterAS("DE-EYEBALL", "DE", 1)
	usSrc := w.ipdb.MustAllocate(usASN)
	deSrc := w.ipdb.MustAllocate(deASN)
	askFrom := func(src netip.Addr) netip.Addr {
		c := dnsio.NewClient(&dnsio.SimTransport{Fabric: w.fabric, Src: src})
		resp, err := c.Query(context.Background(),
			netip.AddrPortFrom(hz.NS[0].Addr, dnsio.DNSPort), "cdn-site.com", dns.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		as := resp.AnswersOfType(dns.TypeA)
		if len(as) != 1 {
			t.Fatalf("answers: %v", resp.Answers)
		}
		return as[0].Data.(*dns.A).Addr
	}
	usEdge, deEdge := askFrom(usSrc), askFrom(deSrc)
	if usEdge == deEdge {
		t.Errorf("geo answers identical: %v", usEdge)
	}
	wantUS, _ := cf.EdgeAddr("US")
	if usEdge != wantUS {
		t.Errorf("US edge = %v, want %v", usEdge, wantUS)
	}
	if len(cf.EdgeAddrs()) != len(ipam.Countries) {
		t.Errorf("edge count = %d", len(cf.EdgeAddrs()))
	}
}

func TestOpenRecursiveFallback(t *testing.T) {
	w := newWorld(t)
	// A real site delegated to a legit server.
	legitASN := w.ipdb.RegisterAS("LEGIT", "FR", 1)
	legitNS := w.ipdb.MustAllocate(legitASN)
	siteIP := w.ipdb.MustAllocate(legitASN)
	srv := authority.NewServer()
	z := zone.New("realsite.com")
	z.MustAddRR("realsite.com 3600 IN SOA ns1.realsite.com h.realsite.com 1 7200 3600 1209600 300")
	z.MustAddRR("realsite.com 300 IN A " + siteIP.String())
	z.MustAddRR("ns1.realsite.com 300 IN A " + legitNS.String())
	if err := srv.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if _, err := dnsio.AttachSim(w.fabric, legitNS, srv); err != nil {
		t.Fatal(err)
	}
	if err := w.reg.SetDelegation("realsite.com", []dns.Name{"ns1.realsite.com"},
		map[dns.Name]netip.Addr{"ns1.realsite.com": legitNS}, time.Now()); err != nil {
		t.Fatal(err)
	}

	pol := PresetGodaddy()
	pol.Name = "MisconfiguredHost"
	pol.InfraDomain = "misconf.test"
	pol.OpenRecursive = true
	p, err := NewProvider(pol, w.deps(15))
	if err != nil {
		t.Fatal(err)
	}
	resp := w.queryNS(t, p.Nameservers()[0], "realsite.com", dns.TypeA)
	got := resp.AnswersOfType(dns.TypeA)
	if len(got) != 1 || got[0].Data.(*dns.A).Addr != siteIP {
		t.Errorf("open-recursive answer: %v", resp.Answers)
	}
}

func TestPaidSyncAllNS(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "synced.com")
	cf := w.mustProvider(t, PresetCloudflare())
	cf.OpenAccount("paid", true)
	hz, err := cf.CreateZone("paid", "synced.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(hz.NS) != len(cf.Nameservers()) {
		t.Errorf("paid zone on %d/%d nameservers", len(hz.NS), len(cf.Nameservers()))
	}
}

func TestAccountErrors(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetGodaddy())
	if _, err := p.CreateZone("ghost", "x.com"); err != ErrNoAccount {
		t.Errorf("err = %v", err)
	}
	p.OpenAccount("a", false)
	if _, err := p.CreateZone("a", "bad!name.com"); err == nil {
		t.Error("invalid domain accepted")
	}
	// Re-opening returns the same account.
	a1 := p.OpenAccount("a", false)
	a2 := p.OpenAccount("a", true)
	if a1 != a2 {
		t.Error("OpenAccount duplicated the account")
	}
}

func TestDeleteZone(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "temp.com")
	p := w.mustProvider(t, PresetGodaddy())
	p.OpenAccount("a", false)
	hz, err := p.CreateZone("a", "temp.com")
	if err != nil {
		t.Fatal(err)
	}
	p.DeleteZone(hz)
	if hz.Served() {
		t.Error("zone served after delete")
	}
	if len(p.HostedDomains()) != 0 {
		t.Errorf("hosted domains = %v", p.HostedDomains())
	}
	// Domain can be hosted again afterwards.
	if _, err := p.CreateZone("a", "temp.com"); err != nil {
		t.Errorf("re-create failed: %v", err)
	}
}
