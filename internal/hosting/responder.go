package hosting

import (
	"context"
	"net/netip"

	"repro/internal/dns"
)

// nsResponder wraps a nameserver's authoritative engine with the provider's
// behaviours that depend on the *client*, not the zone: geo-distributed edge
// answers for CDN-customer domains.
type nsResponder struct {
	p  *Provider
	ns *Nameserver
}

// HandleQuery implements dnsio.Responder.
func (r *nsResponder) HandleQuery(src netip.Addr, q *dns.Message) *dns.Message {
	resp := r.ns.srv.HandleQuery(src, q)
	if resp == nil || len(resp.Answers) == 0 {
		return resp
	}
	geo := false
	if q.Question().Type == dns.TypeA {
		if z, ok := r.ns.srv.FindZone(q.Question().Name); ok {
			r.p.geomu.RLock()
			geo = r.p.geoZones[z]
			r.p.geomu.RUnlock()
		}
	}
	if !geo || r.p.edges == nil {
		return resp
	}
	country := r.p.deps.IPDB.CountryOf(src)
	edge, ok := r.p.EdgeAddr(country)
	if !ok {
		return resp
	}
	// Replace the A answers with the client's regional edge, keeping any
	// CNAME chain intact — what a CDN front does.
	var rewritten []dns.RR
	replaced := false
	for _, rr := range resp.Answers {
		if rr.Type() == dns.TypeA {
			if replaced {
				continue
			}
			rr.Data = &dns.A{Addr: edge}
			rr.TTL = 60
			replaced = true
		}
		rewritten = append(rewritten, rr)
	}
	resp.Answers = rewritten
	return resp
}

// fallbackFor builds the out-of-zone behaviour for the provider's
// nameservers: protective records, open recursion, or plain refusal.
func (p *Provider) fallbackFor() func(src netip.Addr, q *dns.Message) *dns.Message {
	return func(src netip.Addr, q *dns.Message) *dns.Message {
		if p.OpenRecursive && p.rec != nil {
			// The §4 misconfiguration: the "authoritative" server resolves
			// unhosted names recursively and relays the answer.
			resolved, err := p.rec.Resolve(context.Background(), q.Question().Name, q.Question().Type)
			if err != nil {
				return nil
			}
			r := q.Reply()
			r.Header.RCode = resolved.Header.RCode
			r.Answers = resolved.Answers
			return r
		}
		if !p.ProtectiveRecords {
			return nil // plain REFUSED
		}
		// Protective records: an A record pointing at the provider's warning
		// site, and an explanatory TXT.
		r := q.Reply()
		r.Header.Authoritative = true
		switch q.Question().Type {
		case dns.TypeA:
			r.Answers = append(r.Answers, dns.RR{
				Name: q.Question().Name, Class: dns.ClassINET, TTL: 300,
				Data: &dns.A{Addr: p.protectiveAddr},
			})
		case dns.TypeTXT:
			r.Answers = append(r.Answers, dns.RR{
				Name: q.Question().Name, Class: dns.ClassINET, TTL: 300,
				Data: dns.NewTXT("this domain is not configured on " + p.Name +
					"; see https://" + string(p.InfraDomain) + "/unconfigured"),
			})
		}
		return r
	}
}

// ProtectiveTXT returns the protective TXT payload the provider serves, so
// URHunter's protective-record collection can be validated in tests.
func (p *Provider) ProtectiveTXT() string {
	return "this domain is not configured on " + p.Name +
		"; see https://" + string(p.InfraDomain) + "/unconfigured"
}
