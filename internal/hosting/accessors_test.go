package hosting

import (
	"errors"
	"testing"
	"time"
)

func TestPolicyStrings(t *testing.T) {
	if GlobalFixed.String() != "global-fixed" || AccountFixed.String() != "account-fixed" ||
		RandomPool.String() != "random" || NSAllocation(9).String() != "unknown" {
		t.Error("NSAllocation strings wrong")
	}
	if VerifyNone.String() != "none" || VerifyNSDelegation.String() != "ns-delegation" ||
		VerifyTXTChallenge.String() != "txt-challenge" || Verification(9).String() != "unknown" {
		t.Error("Verification strings wrong")
	}
}

func TestAppendixCPresetsOrder(t *testing.T) {
	presets := AppendixCPresets()
	want := []string{"Alibaba Cloud", "Amazon", "Baidu Cloud", "ClouDNS",
		"Cloudflare", "Godaddy", "Tencent Cloud"}
	if len(presets) != len(want) {
		t.Fatalf("presets = %d", len(presets))
	}
	for i, p := range presets {
		if p.Name != want[i] {
			t.Errorf("preset %d = %s, want %s (Table 2 row order)", i, p.Name, want[i])
		}
		if p.Verification != VerifyNone || !p.ServeUnverified {
			t.Errorf("%s: pre-disclosure preset must host without verification", p.Name)
		}
	}
}

func TestProviderAccessors(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "acc.com")
	p := w.mustProvider(t, PresetGodaddy())
	if len(p.NameserverAddrs()) != len(p.Nameservers()) {
		t.Error("NameserverAddrs length mismatch")
	}
	if p.ASN() == 0 {
		t.Error("ASN unset")
	}
	p.OpenAccount("a", false)
	hz, err := p.CreateZone("a", "acc.com")
	if err != nil {
		t.Fatal(err)
	}
	addrs := hz.NSAddrs()
	if len(addrs) != len(hz.NS) {
		t.Fatalf("NSAddrs = %d", len(addrs))
	}
	for i, ns := range hz.NS {
		if addrs[i] != ns.Addr {
			t.Errorf("NSAddrs[%d] mismatch", i)
		}
	}
	// Refusal error text.
	_, err = p.CreateZone("a", "acc.com")
	if err == nil || err.Error() == "" {
		t.Error("refusal error text empty")
	}
	// Non-CDN provider has no edges.
	if _, ok := p.EdgeAddr("US"); ok {
		t.Error("non-CDN provider returned an edge")
	}
	// CDN provider falls back to the US edge for unknown countries.
	cf := w.mustProvider(t, PresetCloudflare())
	us, ok := cf.EdgeAddr("US")
	if !ok {
		t.Fatal("no US edge")
	}
	fallback, ok := cf.EdgeAddr("ZZ")
	if !ok || fallback != us {
		t.Errorf("unknown-country edge = %v, want US %v", fallback, us)
	}
}

func TestRecheckNSDelegation(t *testing.T) {
	w := newWorld(t)
	pol := PostDisclosure(PresetTencent(), nil)
	p, err := NewProvider(pol, w.deps(21))
	if err != nil {
		t.Fatal(err)
	}
	w.registerDomain(t, "late.com")
	p.OpenAccount("owner", false)
	hz, err := p.CreateZone("owner", "late.com")
	if err != nil {
		t.Fatal(err)
	}
	if hz.Served() {
		t.Fatal("zone served before delegation")
	}
	// First recheck fails: the delegation still points elsewhere.
	if p.RecheckNSDelegation(hz) {
		t.Error("recheck passed without delegation")
	}
	// Owner completes the delegation; recheck passes and the zone serves.
	if err := w.reg.SetDelegation("late.com", hz.NSHosts(), nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	if !p.RecheckNSDelegation(hz) {
		t.Error("recheck failed after delegation")
	}
	if !hz.Served() || !hz.Verified {
		t.Error("zone not served after passing recheck")
	}
	// Idempotent.
	if !p.RecheckNSDelegation(hz) {
		t.Error("second recheck failed")
	}
	// A provider without that verification mode reports current state.
	gd := w.mustProvider(t, PresetGodaddy())
	gd.OpenAccount("x", false)
	w.registerDomain(t, "plain.com")
	hz2, err := gd.CreateZone("x", "plain.com")
	if err != nil {
		t.Fatal(err)
	}
	if !gd.RecheckNSDelegation(hz2) {
		t.Error("VerifyNone provider should report verified")
	}
}

func TestZonesForAndHostedDomains(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "list.com")
	p := w.mustProvider(t, PresetTencent())
	p.OpenAccount("a", false)
	p.OpenAccount("b", false)
	if _, err := p.CreateZone("a", "list.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateZone("b", "list.com"); err != nil {
		t.Fatal(err)
	}
	if got := len(p.ZonesFor("list.com")); got != 2 {
		t.Errorf("ZonesFor = %d", got)
	}
	if got := p.HostedDomains(); len(got) != 1 || got[0] != "list.com" {
		t.Errorf("HostedDomains = %v", got)
	}
	if _, ok := IsRefusal(errors.New("plain error")); ok {
		t.Error("IsRefusal matched a non-refusal")
	}
	if _, ok := IsRefusal(nil); ok {
		t.Error("IsRefusal matched nil")
	}
}
