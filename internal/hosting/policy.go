// Package hosting models DNS hosting providers: the nameserver fleets,
// account portals, and — centrally for this paper — the hosting policies of
// Appendix C that decide whether an attacker can create a zone for a domain
// they do not own. Every axis of Table 2 is a knob here: nameserver
// allocation (global-fixed / account-fixed / random pool), ownership
// verification, supported domain categories (unregistered / subdomain / SLD /
// eTLD with reserved lists), duplicate-zone rules, and domain retrieval.
//
// The mitigation options from §6 are implemented as verification modes:
// VerifyNSDelegation is option (1) — check the TLD's NS records point at the
// assigned nameservers; VerifyTXTChallenge is option (2) — require a random
// token in the domain's real zone, fetched through normal resolution.
package hosting

import (
	"repro/internal/dns"
)

// NSAllocation is the nameserver-assignment policy from Table 2.
type NSAllocation int

// Allocation policies.
const (
	// GlobalFixed: every customer gets the same nameservers (Godaddy,
	// Alibaba, Baidu, ClouDNS).
	GlobalFixed NSAllocation = iota
	// AccountFixed: each account gets its own fixed set (Cloudflare,
	// Tencent); different users hosting the same domain get different sets.
	AccountFixed
	// RandomPool: each zone gets servers drawn at random from a large pool
	// (Amazon Route 53).
	RandomPool
)

// String names the allocation policy as Table 2 does.
func (a NSAllocation) String() string {
	switch a {
	case GlobalFixed:
		return "global-fixed"
	case AccountFixed:
		return "account-fixed"
	case RandomPool:
		return "random"
	}
	return "unknown"
}

// Verification is the ownership-verification mode.
type Verification int

// Verification modes.
const (
	// VerifyNone: no ownership verification; zones are served immediately.
	// This is the pre-disclosure state of every provider in Appendix C.
	VerifyNone Verification = iota
	// VerifyNSDelegation: the provider checks that the TLD's NS records for
	// the domain point at the assigned nameservers before serving the zone
	// (mitigation option 1; adopted by Tencent DNSPod after disclosure).
	VerifyNSDelegation
	// VerifyTXTChallenge: the provider requires a random TXT token resolvable
	// through the domain's real delegation (mitigation option 2; partially
	// adopted by Alibaba).
	VerifyTXTChallenge
)

// String names the verification mode.
func (v Verification) String() string {
	switch v {
	case VerifyNone:
		return "none"
	case VerifyNSDelegation:
		return "ns-delegation"
	case VerifyTXTChallenge:
		return "txt-challenge"
	}
	return "unknown"
}

// Policy is a provider's hosting strategy — one row of Table 2 plus the
// operational knobs the measurement observes.
type Policy struct {
	// Name is the provider's display name.
	Name string
	// InfraDomain is the provider's own domain; nameserver hostnames live
	// under it (ns1.<InfraDomain>).
	InfraDomain dns.Name

	// NSAllocation selects how nameservers are assigned to zones.
	NSAllocation NSAllocation
	// ServerCount is the number of nameserver IPs the provider operates.
	ServerCount int
	// NSPerZone is how many nameservers a zone/account is assigned.
	NSPerZone int

	// Verification is the ownership-verification mode (VerifyNone before
	// disclosure).
	Verification Verification
	// ServeUnverified serves zones that have not passed verification — the
	// behaviour the paper observed even at providers that "remind" users to
	// verify: the assigned servers answer anyway.
	ServeUnverified bool

	// AllowUnregistered permits hosting domains with no registration at all.
	AllowUnregistered bool
	// AllowSubdomain permits hosting subdomains of SLDs.
	AllowSubdomain bool
	// SubdomainNeedsPaid gates subdomain hosting behind a paid account
	// (Cloudflare's extra-payment behaviour).
	SubdomainNeedsPaid bool
	// AllowSLD permits hosting second-level domains.
	AllowSLD bool
	// AllowETLD permits hosting public suffixes (gov.cn and friends).
	AllowETLD bool
	// Reserved lists domains refused regardless of category (the
	// extremely-popular blocklist; Cloudflare expanded it after disclosure).
	Reserved []dns.Name

	// AllowDuplicateSingleUser lets one account create several zones for the
	// same domain (Amazon).
	AllowDuplicateSingleUser bool
	// AllowDuplicateCrossUser lets different accounts host the same domain
	// simultaneously (Cloudflare, Amazon, Tencent).
	AllowDuplicateCrossUser bool
	// SupportsRetrieval lets a verified owner evict another account's zone
	// for their domain (Tencent/Alibaba have it; Godaddy/ClouDNS/Amazon do
	// not — Table 2's "No retrieval" column).
	SupportsRetrieval bool

	// ProtectiveRecords serves warning records for domains nobody hosts
	// (prominent at ClouDNS in Figure 2).
	ProtectiveRecords bool
	// OpenRecursive makes the nameservers answer unhosted-domain queries by
	// recursive resolution — the misconfiguration §4 lists as a benign source
	// of undelegated answers.
	OpenRecursive bool
	// PaidSyncAllNS propagates a paid account's zones to every nameserver
	// the provider operates (Cloudflare's paid-sync behaviour).
	PaidSyncAllNS bool
	// CDNEdges gives the provider per-country edge IPs; legitimate customer
	// zones flagged geo-distributed answer A queries with the edge of the
	// client's country.
	CDNEdges bool
}

// reservedSet compiles the reserved list for fast lookup.
func (p *Policy) reservedSet() map[dns.Name]bool {
	m := make(map[dns.Name]bool, len(p.Reserved))
	for _, d := range p.Reserved {
		m[d] = true
	}
	return m
}

// RefusalReason explains why CreateZone rejected a request.
type RefusalReason string

// Refusal reasons surfaced by CreateZone.
const (
	RefusedReserved        RefusalReason = "domain is on the provider's reserved list"
	RefusedUnregistered    RefusalReason = "unregistered domains are not supported"
	RefusedSubdomain       RefusalReason = "subdomains are not supported"
	RefusedSubdomainPaid   RefusalReason = "subdomain hosting requires a paid account"
	RefusedSLD             RefusalReason = "second-level domains are not supported"
	RefusedETLD            RefusalReason = "public suffixes are not supported"
	RefusedDuplicateSingle RefusalReason = "account already hosts a zone for this domain"
	RefusedDuplicateCross  RefusalReason = "another account already hosts this domain"
	RefusedExhausted       RefusalReason = "no nameserver set available for this domain"
	RefusedVerification    RefusalReason = "ownership verification failed"
)
