package hosting

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/ipam"
	"repro/internal/psl"
	"repro/internal/registry"
	"repro/internal/resolver"
	"repro/internal/simnet"
	"repro/internal/websim"
	"repro/internal/zone"
)

// Deps bundles the world infrastructure a provider plugs into.
type Deps struct {
	Fabric   *simnet.Fabric
	IPDB     *ipam.DB
	Registry *registry.Registry
	PSL      *psl.List
	Web      *websim.World // optional: used to stand up the protective site
	// Roots enables verification modes and OpenRecursive; may be nil when
	// neither is used.
	Roots []netip.Addr
	// Country the provider's infrastructure is registered in.
	Country string
	// Seed drives nameserver assignment randomness.
	Seed int64
}

// Nameserver is one provider-operated authoritative server.
type Nameserver struct {
	Host dns.Name
	Addr netip.Addr
	srv  *authority.Server
}

// Server exposes the underlying authoritative engine (tests, stats).
func (n *Nameserver) Server() *authority.Server { return n.srv }

// Account is a customer (or attacker) account at a provider.
type Account struct {
	ID   string
	Paid bool

	assigned []*Nameserver // populated lazily for account-fixed allocation
}

// HostedZone is a zone created through a provider's portal.
type HostedZone struct {
	Domain   dns.Name
	Account  *Account
	Zone     *zone.Zone
	NS       []*Nameserver
	Verified bool
	// Challenge is the TXT token to publish when the provider uses
	// VerifyTXTChallenge.
	Challenge string
	CreatedAt time.Time
	// GeoDistributed marks a legitimate CDN-customer zone whose A answers
	// vary by client country.
	GeoDistributed bool

	provider *Provider
	served   bool
}

// NSHosts returns the assigned nameserver hostnames.
func (h *HostedZone) NSHosts() []dns.Name {
	out := make([]dns.Name, len(h.NS))
	for i, ns := range h.NS {
		out[i] = ns.Host
	}
	return out
}

// NSAddrs returns the assigned nameserver IPs.
func (h *HostedZone) NSAddrs() []netip.Addr {
	out := make([]netip.Addr, len(h.NS))
	for i, ns := range h.NS {
		out[i] = ns.Addr
	}
	return out
}

// Provider is a DNS hosting service.
type Provider struct {
	Policy
	deps Deps

	asn         ipam.ASN
	nameservers []*Nameserver
	allNS       map[dns.Name]*Nameserver

	protectiveAddr netip.Addr
	edges          map[string]netip.Addr // country -> CDN edge IP

	rec *resolver.Recursive // for verification / open recursion

	mu       sync.Mutex
	rng      *rand.Rand
	accounts map[string]*Account
	zones    map[dns.Name][]*HostedZone // by domain
	geomu    sync.RWMutex
	geoZones map[*zone.Zone]bool
}

// ErrNoAccount is returned when an operation references an unknown account.
var ErrNoAccount = errors.New("hosting: unknown account")

// Refusal is the error CreateZone returns when policy rejects the request.
type Refusal struct {
	Provider string
	Domain   dns.Name
	Reason   RefusalReason
}

// Error implements error.
func (r *Refusal) Error() string {
	return fmt.Sprintf("hosting: %s refused %s: %s", r.Provider, r.Domain.String(), r.Reason)
}

func (p *Provider) refuse(domain dns.Name, reason RefusalReason) error {
	return &Refusal{Provider: p.Name, Domain: domain, Reason: reason}
}

// IsRefusal reports whether err is a policy refusal and returns its reason.
func IsRefusal(err error) (RefusalReason, bool) {
	var r *Refusal
	if errors.As(err, &r) {
		return r.Reason, true
	}
	return "", false
}

// NewProvider stands up a provider: nameserver IPs on the fabric, the
// provider's own infrastructure delegation, the protective website, and CDN
// edges when configured.
func NewProvider(pol Policy, deps Deps) (*Provider, error) {
	if pol.ServerCount < 1 {
		pol.ServerCount = 2
	}
	if pol.NSPerZone < 1 {
		pol.NSPerZone = 2
	}
	if pol.NSPerZone > pol.ServerCount {
		pol.NSPerZone = pol.ServerCount
	}
	if deps.Country == "" {
		deps.Country = "US"
	}
	p := &Provider{
		Policy:   pol,
		deps:     deps,
		rng:      rand.New(rand.NewSource(deps.Seed)),
		accounts: make(map[string]*Account),
		zones:    make(map[dns.Name][]*HostedZone),
		geoZones: make(map[*zone.Zone]bool),
		allNS:    make(map[dns.Name]*Nameserver),
	}
	blocks := pol.ServerCount/2000 + 2
	p.asn = deps.IPDB.RegisterAS(fmt.Sprintf("%s-NET", pol.Name), deps.Country, blocks)

	infraGlue := make(map[dns.Name]netip.Addr)
	for i := 0; i < pol.ServerCount; i++ {
		addr, err := deps.IPDB.Allocate(p.asn)
		if err != nil {
			return nil, err
		}
		ns := &Nameserver{
			Host: dns.CanonicalName(fmt.Sprintf("ns%d.%s", i+1, string(pol.InfraDomain))),
			Addr: addr,
			srv:  authority.NewServer(),
		}
		ns.srv.SetFallback(p.fallbackFor())
		if _, err := dnsio.AttachSim(deps.Fabric, addr, &nsResponder{p: p, ns: ns}); err != nil {
			return nil, err
		}
		p.nameservers = append(p.nameservers, ns)
		p.allNS[ns.Host] = ns
		infraGlue[ns.Host] = addr
	}

	// Delegate the provider's infrastructure domain so NS hostnames resolve.
	if deps.Registry != nil {
		infraZone := zone.New(pol.InfraDomain)
		infraZone.MustAddRR(fmt.Sprintf("%s 3600 IN SOA ns1.%s hostmaster.%s 1 7200 3600 1209600 300",
			string(pol.InfraDomain), string(pol.InfraDomain), string(pol.InfraDomain)))
		var hosts []dns.Name
		for _, ns := range p.nameservers {
			infraZone.MustAddRR(fmt.Sprintf("%s 3600 IN A %s", string(ns.Host), ns.Addr))
			infraZone.MustAddRR(fmt.Sprintf("%s 3600 IN NS %s", string(pol.InfraDomain), string(ns.Host)))
			hosts = append(hosts, ns.Host)
		}
		for _, ns := range p.nameservers {
			if err := ns.srv.AddZone(infraZone); err != nil {
				return nil, err
			}
		}
		if err := deps.Registry.SetDelegation(pol.InfraDomain, hosts, infraGlue, time.Now()); err != nil {
			return nil, err
		}
	}

	// Protective website: one IP serving the provider's warning page.
	if pol.ProtectiveRecords {
		addr, err := deps.IPDB.Allocate(p.asn)
		if err != nil {
			return nil, err
		}
		p.protectiveAddr = addr
		if deps.Web != nil {
			site := &websim.Site{
				Addr: addr, Kind: websim.KindProviderWarning, Title: pol.Name,
				Cert: websim.NewCert("parking."+string(pol.InfraDomain), pol.Name+" CA"),
			}
			if err := deps.Web.Install(site); err != nil {
				return nil, err
			}
		}
	}

	// CDN edges per country, each with a real web presence fronting the
	// customer sites behind the provider's certificate.
	if pol.CDNEdges {
		p.edges = make(map[string]netip.Addr, len(ipam.Countries))
		for _, c := range ipam.Countries {
			addr, err := deps.IPDB.Allocate(p.asn)
			if err != nil {
				return nil, err
			}
			p.edges[c] = addr
			if deps.Web != nil {
				site := &websim.Site{
					Addr: addr, Kind: websim.KindCDNEdge,
					Title: pol.Name + " edge " + c,
					Cert: websim.NewCert("*.cdn."+string(pol.InfraDomain),
						pol.Name+" CA", "cdn."+string(pol.InfraDomain)),
				}
				if err := deps.Web.Install(site); err != nil {
					return nil, err
				}
			}
		}
	}

	if len(deps.Roots) > 0 {
		src, err := deps.IPDB.Allocate(p.asn)
		if err != nil {
			return nil, err
		}
		client := dnsio.NewClient(&dnsio.SimTransport{Fabric: deps.Fabric, Src: src})
		client.SeedIDs(deps.Seed + 1)
		p.rec = resolver.NewRecursive(client, deps.Roots)
	}
	return p, nil
}

// Nameservers returns the provider's nameserver fleet.
func (p *Provider) Nameservers() []*Nameserver {
	out := make([]*Nameserver, len(p.nameservers))
	copy(out, p.nameservers)
	return out
}

// NameserverAddrs returns the fleet's IPs.
func (p *Provider) NameserverAddrs() []netip.Addr {
	out := make([]netip.Addr, len(p.nameservers))
	for i, ns := range p.nameservers {
		out[i] = ns.Addr
	}
	return out
}

// ProtectiveAddr returns the warning-site IP ({} when none).
func (p *Provider) ProtectiveAddr() netip.Addr { return p.protectiveAddr }

// EdgeAddr returns the CDN edge IP for a country (falls back to US).
func (p *Provider) EdgeAddr(country string) (netip.Addr, bool) {
	if p.edges == nil {
		return netip.Addr{}, false
	}
	if a, ok := p.edges[country]; ok {
		return a, true
	}
	a, ok := p.edges["US"]
	return a, ok
}

// EdgeAddrs returns every CDN edge IP.
func (p *Provider) EdgeAddrs() []netip.Addr {
	var out []netip.Addr
	for _, a := range p.edges {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ASN returns the provider's autonomous system number.
func (p *Provider) ASN() ipam.ASN { return p.asn }

// OpenAccount creates (or returns) an account.
func (p *Provider) OpenAccount(id string, paid bool) *Account {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.accounts[id]; ok {
		return a
	}
	a := &Account{ID: id, Paid: paid}
	p.accounts[id] = a
	return a
}

// classify buckets the requested domain for the supported-domain policy.
func (p *Provider) classify(domain dns.Name) (psl.Category, bool) {
	cat := p.deps.PSL.Classify(domain)
	registered := false
	if p.deps.Registry != nil {
		// A domain counts as registered if it or its registrable ancestor is
		// delegated.
		if p.deps.Registry.IsDelegated(domain) {
			registered = true
		} else if reg, ok := p.deps.PSL.RegistrableDomain(domain); ok && p.deps.Registry.IsDelegated(reg) {
			registered = true
		}
	}
	return cat, registered
}

// CreateZone runs the full portal flow of Appendix C: policy checks,
// nameserver allocation, optional ownership verification, and activation.
// The returned HostedZone's Zone can then be filled with arbitrary records —
// including undelegated ones.
func (p *Provider) CreateZone(accountID string, domain dns.Name) (*HostedZone, error) {
	p.mu.Lock()
	account, ok := p.accounts[accountID]
	p.mu.Unlock()
	if !ok {
		return nil, ErrNoAccount
	}
	if err := domain.Validate(); err != nil {
		return nil, err
	}

	reserved := p.reservedSet()
	if reserved[domain] {
		return nil, p.refuse(domain, RefusedReserved)
	}
	cat, registered := p.classify(domain)
	switch cat {
	case psl.CategoryETLD:
		if !p.AllowETLD {
			return nil, p.refuse(domain, RefusedETLD)
		}
	case psl.CategorySLD:
		if !p.AllowSLD {
			return nil, p.refuse(domain, RefusedSLD)
		}
		if !registered && !p.AllowUnregistered {
			return nil, p.refuse(domain, RefusedUnregistered)
		}
	case psl.CategorySubdomain:
		if !p.AllowSubdomain {
			return nil, p.refuse(domain, RefusedSubdomain)
		}
		if p.SubdomainNeedsPaid && !account.Paid {
			return nil, p.refuse(domain, RefusedSubdomainPaid)
		}
		if !registered && !p.AllowUnregistered {
			return nil, p.refuse(domain, RefusedUnregistered)
		}
	default:
		if !p.AllowUnregistered {
			return nil, p.refuse(domain, RefusedUnregistered)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	existing := p.zones[domain]
	for _, hz := range existing {
		if hz.Account == account && !p.AllowDuplicateSingleUser {
			return nil, p.refuse(domain, RefusedDuplicateSingle)
		}
		if hz.Account != account && !p.AllowDuplicateCrossUser {
			return nil, p.refuse(domain, RefusedDuplicateCross)
		}
	}

	ns, err := p.allocateNSLocked(account, domain)
	if err != nil {
		return nil, err
	}

	hz := &HostedZone{
		Domain:    domain,
		Account:   account,
		Zone:      zone.New(domain),
		NS:        ns,
		CreatedAt: time.Now(),
		Challenge: fmt.Sprintf("urhunter-verify-%08x", p.rng.Uint32()),
		provider:  p,
	}
	hz.Zone.MustAddRR(fmt.Sprintf("%s 3600 IN SOA %s hostmaster.%s 1 7200 3600 1209600 300",
		string(domain), string(ns[0].Host), string(p.InfraDomain)))
	for _, n := range ns {
		hz.Zone.MustAddRR(fmt.Sprintf("%s 3600 IN NS %s", string(domain), string(n.Host)))
	}

	// Ownership verification. The decisive behaviour for URs: with
	// ServeUnverified set, the zone is served even when verification has not
	// happened (or failed).
	switch p.Verification {
	case VerifyNone:
		hz.Verified = true
	case VerifyNSDelegation:
		hz.Verified = p.verifyNSDelegationLocked(hz)
	case VerifyTXTChallenge:
		hz.Verified = false // completed later via CompleteTXTVerification
	}
	if hz.Verified || p.ServeUnverified {
		if err := p.serveLocked(hz); err != nil {
			return nil, err
		}
	}
	p.zones[domain] = append(p.zones[domain], hz)
	return hz, nil
}

// allocateNSLocked picks the nameserver set for a new zone per policy.
func (p *Provider) allocateNSLocked(account *Account, domain dns.Name) ([]*Nameserver, error) {
	if p.PaidSyncAllNS && account.Paid {
		return p.availableForDomainLocked(domain, len(p.nameservers))
	}
	switch p.NSAllocation {
	case GlobalFixed:
		set := p.nameservers[:p.NSPerZone]
		for _, ns := range set {
			if ns.srv.HasZone(domain) {
				return nil, p.refuse(domain, RefusedExhausted)
			}
		}
		return set, nil
	case AccountFixed:
		if account.assigned == nil {
			start := p.rng.Intn(len(p.nameservers))
			for i := 0; i < p.NSPerZone; i++ {
				account.assigned = append(account.assigned, p.nameservers[(start+i)%len(p.nameservers)])
			}
		}
		// Cloudflare ensures different users hosting the same domain get
		// different nameservers: if any of the account's servers already
		// serves this domain, assign a fresh set.
		conflict := false
		for _, ns := range account.assigned {
			if ns.srv.HasZone(domain) {
				conflict = true
				break
			}
		}
		if !conflict {
			return account.assigned, nil
		}
		return p.availableForDomainLocked(domain, p.NSPerZone)
	case RandomPool:
		return p.randomAvailableLocked(domain, p.NSPerZone)
	}
	return nil, p.refuse(domain, RefusedExhausted)
}

// availableForDomainLocked returns up to want servers not yet serving the
// domain, scanning in order.
func (p *Provider) availableForDomainLocked(domain dns.Name, want int) ([]*Nameserver, error) {
	var out []*Nameserver
	for _, ns := range p.nameservers {
		if !ns.srv.HasZone(domain) {
			out = append(out, ns)
			if len(out) == want {
				return out, nil
			}
		}
	}
	if len(out) == 0 {
		return nil, p.refuse(domain, RefusedExhausted)
	}
	return out, nil
}

// randomAvailableLocked draws want distinct servers that do not yet serve
// the domain — Amazon's pool draw, including the exhaustion behaviour an
// attacker can trigger by repeatedly hosting the same domain.
func (p *Provider) randomAvailableLocked(domain dns.Name, want int) ([]*Nameserver, error) {
	perm := p.rng.Perm(len(p.nameservers))
	var out []*Nameserver
	for _, idx := range perm {
		ns := p.nameservers[idx]
		if !ns.srv.HasZone(domain) {
			out = append(out, ns)
			if len(out) == want {
				return out, nil
			}
		}
	}
	// Not enough free servers: the pool is exhausted for this domain.
	return nil, p.refuse(domain, RefusedExhausted)
}

// serveLocked attaches the hosted zone to its assigned nameservers.
func (p *Provider) serveLocked(hz *HostedZone) error {
	for i, ns := range hz.NS {
		if err := ns.srv.AddZone(hz.Zone); err != nil {
			// Roll back partial attachment.
			for _, done := range hz.NS[:i] {
				done.srv.RemoveZone(hz.Domain)
			}
			return p.refuse(hz.Domain, RefusedExhausted)
		}
	}
	hz.served = true
	return nil
}

// Served reports whether the zone is answered by its nameservers.
func (h *HostedZone) Served() bool { return h.served }

// verifyNSDelegationLocked implements mitigation option (1).
func (p *Provider) verifyNSDelegationLocked(hz *HostedZone) bool {
	if p.deps.Registry == nil {
		return false
	}
	for _, ns := range hz.NS {
		if p.deps.Registry.IsDelegatedTo(hz.Domain, ns.Host) {
			return true
		}
	}
	return false
}

// RecheckNSDelegation re-runs mitigation option (1) for a zone created
// before the owner finished pointing the TLD's NS records at the assigned
// servers — the normal onboarding order under the post-disclosure policy.
// The zone starts being served once the check passes.
func (p *Provider) RecheckNSDelegation(hz *HostedZone) bool {
	if p.Verification != VerifyNSDelegation {
		return hz.Verified
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if hz.Verified && hz.served {
		return true
	}
	if p.verifyNSDelegationLocked(hz) {
		hz.Verified = true
		if !hz.served {
			if err := p.serveLocked(hz); err != nil {
				return false
			}
		}
		return true
	}
	return false
}

// CompleteTXTVerification implements mitigation option (2): the provider
// resolves the challenge label through normal resolution and activates the
// zone only when the token is published in the domain's real zone — which an
// attacker without control of the delegation cannot do.
func (p *Provider) CompleteTXTVerification(ctx context.Context, hz *HostedZone) (bool, error) {
	if p.Verification != VerifyTXTChallenge {
		return hz.Verified, nil
	}
	if p.rec == nil {
		return false, errors.New("hosting: provider has no resolver for verification")
	}
	label := hz.Domain.Child("_urhunter-challenge")
	txts, err := p.rec.LookupTXT(ctx, label)
	if err != nil {
		return false, err
	}
	for _, txt := range txts {
		if txt == hz.Challenge {
			p.mu.Lock()
			hz.Verified = true
			var serveErr error
			if !hz.served {
				serveErr = p.serveLocked(hz)
			}
			p.mu.Unlock()
			return true, serveErr
		}
	}
	return false, nil
}

// DeleteZone removes a hosted zone from the portal and its nameservers.
func (p *Provider) DeleteZone(hz *HostedZone) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deleteZoneLocked(hz)
}

func (p *Provider) deleteZoneLocked(hz *HostedZone) {
	if hz.served {
		for _, ns := range hz.NS {
			if z, ok := ns.srv.Zone(hz.Domain); ok && z == hz.Zone {
				ns.srv.RemoveZone(hz.Domain)
			}
		}
		hz.served = false
	}
	zs := p.zones[hz.Domain]
	for i, other := range zs {
		if other == hz {
			p.zones[hz.Domain] = append(zs[:i], zs[i+1:]...)
			break
		}
	}
	if len(p.zones[hz.Domain]) == 0 {
		delete(p.zones, hz.Domain)
	}
	p.geomu.Lock()
	delete(p.geoZones, hz.Zone)
	p.geomu.Unlock()
}

// Retrieve implements the domain-retrieval mechanism: a verified owner
// evicts every other account's zone for the domain. ownerVerified models the
// out-of-band ownership proof the provider demands.
func (p *Provider) Retrieve(domain dns.Name, byAccount string, ownerVerified bool) error {
	if !p.SupportsRetrieval {
		return fmt.Errorf("hosting: %s has no domain-retrieval mechanism", p.Name)
	}
	if !ownerVerified {
		return p.refuse(domain, RefusedVerification)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, hz := range append([]*HostedZone(nil), p.zones[domain]...) {
		if hz.Account.ID != byAccount {
			p.deleteZoneLocked(hz)
		}
	}
	return nil
}

// ZonesFor returns all hosted zones for a domain.
func (p *Provider) ZonesFor(domain dns.Name) []*HostedZone {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*HostedZone, len(p.zones[domain]))
	copy(out, p.zones[domain])
	return out
}

// HostedDomains returns every domain with at least one zone.
func (p *Provider) HostedDomains() []dns.Name {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]dns.Name, 0, len(p.zones))
	for d := range p.zones {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkGeoDistributed flags one hosted zone for per-country edge answers.
// The flag is per zone object, not per domain: an attacker's duplicate zone
// for the same domain keeps serving its own records verbatim.
func (p *Provider) MarkGeoDistributed(hz *HostedZone) {
	p.geomu.Lock()
	defer p.geomu.Unlock()
	hz.GeoDistributed = true
	p.geoZones[hz.Zone] = true
}
