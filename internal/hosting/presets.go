package hosting

import "repro/internal/dns"

// Presets encode Table 2: the hosting strategies of the seven mainstream
// providers the paper investigated, in their pre-disclosure state. Server
// counts are scaled-down stand-ins for the real fleets (Amazon's pool of
// 2,006 nameservers becomes a configurable pool; tests use the default
// below, the full-scale experiment raises it).

// defaultReserved is the "extremely popular domains" blocklist every tested
// provider applied in some form (google.com is the paper's example).
var defaultReserved = []dns.Name{
	"google.com", "facebook.com", "microsoft.com", "amazon.com", "apple.com",
}

// PresetAlibaba is Alibaba Cloud: global-fixed NS, subdomains allowed,
// retrieval supported.
func PresetAlibaba() Policy {
	return Policy{
		Name: "Alibaba Cloud", InfraDomain: "alidns.test",
		NSAllocation: GlobalFixed, ServerCount: 32, NSPerZone: 2,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: false, AllowSubdomain: true, AllowSLD: true, AllowETLD: true,
		Reserved:                 defaultReserved,
		AllowDuplicateSingleUser: false, AllowDuplicateCrossUser: false,
		SupportsRetrieval: true,
	}
}

// PresetAmazon is Amazon Route 53: random pool allocation, unregistered
// domains and duplicates allowed, no retrieval.
func PresetAmazon() Policy {
	return Policy{
		Name: "Amazon", InfraDomain: "awsdns.test",
		NSAllocation: RandomPool, ServerCount: 64, NSPerZone: 4,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: true, AllowSubdomain: true, AllowSLD: true, AllowETLD: true,
		Reserved:                 defaultReserved,
		AllowDuplicateSingleUser: true, AllowDuplicateCrossUser: true,
		SupportsRetrieval: false,
	}
}

// PresetBaidu is Baidu Cloud: global-fixed, SLD/eTLD only.
func PresetBaidu() Policy {
	return Policy{
		Name: "Baidu Cloud", InfraDomain: "baidudns.test",
		NSAllocation: GlobalFixed, ServerCount: 8, NSPerZone: 2,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: false, AllowSubdomain: false, AllowSLD: true, AllowETLD: true,
		Reserved:                 defaultReserved,
		AllowDuplicateSingleUser: false, AllowDuplicateCrossUser: false,
		SupportsRetrieval: true,
	}
}

// PresetClouDNS is ClouDNS: global-fixed, very liberal (unregistered
// domains, gov.cn), protective records for unhosted domains, no retrieval.
func PresetClouDNS() Policy {
	return Policy{
		Name: "ClouDNS", InfraDomain: "cloudns.test",
		NSAllocation: GlobalFixed, ServerCount: 8, NSPerZone: 4,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: true, AllowSubdomain: true, AllowSLD: true, AllowETLD: true,
		Reserved:                 nil, // the paper found github.com, google.de, gov.cn hostable
		AllowDuplicateSingleUser: false, AllowDuplicateCrossUser: false,
		SupportsRetrieval: false,
		ProtectiveRecords: true,
	}
}

// PresetCloudflare is Cloudflare: account-fixed NS, subdomains behind
// payment, cross-user duplicates with distinct NS sets, paid sync to all
// nameservers, CDN edges.
func PresetCloudflare() Policy {
	return Policy{
		Name: "Cloudflare", InfraDomain: "cfdns.test",
		NSAllocation: AccountFixed, ServerCount: 120, NSPerZone: 2,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: false, AllowSubdomain: true, SubdomainNeedsPaid: true,
		AllowSLD: true, AllowETLD: true,
		Reserved:                 defaultReserved,
		AllowDuplicateSingleUser: false, AllowDuplicateCrossUser: true,
		SupportsRetrieval: true,
		PaidSyncAllNS:     true,
		CDNEdges:          true,
	}
}

// PresetGodaddy is Godaddy: global-fixed, subdomains allowed, no retrieval.
func PresetGodaddy() Policy {
	return Policy{
		Name: "Godaddy", InfraDomain: "domaincontrol.test",
		NSAllocation: GlobalFixed, ServerCount: 16, NSPerZone: 2,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: false, AllowSubdomain: true, AllowSLD: true, AllowETLD: true,
		Reserved:                 nil, // google-analytics.com, windowsupdate.com, gov.kp were allowed
		AllowDuplicateSingleUser: false, AllowDuplicateCrossUser: false,
		SupportsRetrieval: false,
	}
}

// PresetTencent is Tencent Cloud (DNSPod): account-fixed, SLD/eTLD only,
// cross-user duplicates, retrieval supported.
func PresetTencent() Policy {
	return Policy{
		Name: "Tencent Cloud", InfraDomain: "dnspod.test",
		NSAllocation: AccountFixed, ServerCount: 24, NSPerZone: 2,
		Verification: VerifyNone, ServeUnverified: true,
		AllowUnregistered: false, AllowSubdomain: false, AllowSLD: true, AllowETLD: true,
		Reserved:                 defaultReserved,
		AllowDuplicateSingleUser: false, AllowDuplicateCrossUser: true,
		SupportsRetrieval: true,
	}
}

// AppendixCPresets returns the seven investigated providers in Table 2's
// row order.
func AppendixCPresets() []Policy {
	return []Policy{
		PresetAlibaba(), PresetAmazon(), PresetBaidu(), PresetClouDNS(),
		PresetCloudflare(), PresetGodaddy(), PresetTencent(),
	}
}

// PostDisclosure applies the vendor reactions reported in §6 to a preset:
// Tencent adopted NS-delegation verification outright; Cloudflare expanded
// its reserved list; Alibaba adopted TXT-challenge verification for
// subdomain zones (partially — SLD hosting without verification remained).
func PostDisclosure(p Policy, extraReserved []dns.Name) Policy {
	switch p.Name {
	case "Tencent Cloud":
		p.Verification = VerifyNSDelegation
		p.ServeUnverified = false
	case "Cloudflare":
		p.Reserved = append(append([]dns.Name(nil), p.Reserved...), extraReserved...)
	case "Alibaba Cloud":
		p.Verification = VerifyTXTChallenge
		p.ServeUnverified = true // still exploitable per the paper's re-test
	}
	return p
}
