package hosting

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dns"
)

func mustName(s string) dns.Name { return dns.MustParseName(s) }

// TestQuickAccountFixedAssignmentStable: under account-fixed allocation, one
// account always receives the same nameserver set across its zones (absent
// per-domain conflicts).
func TestQuickAccountFixedAssignmentStable(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetTencent())
	f := func(acctByte, d1, d2 uint8) bool {
		acct := fmt.Sprintf("acct-%d", acctByte)
		p.OpenAccount(acct, false)
		dom1 := mustName(fmt.Sprintf("qf%d-%d.com", acctByte, d1))
		dom2 := mustName(fmt.Sprintf("qs%d-%d.com", acctByte, d2))
		w.registerDomain(t, dom1)
		w.registerDomain(t, dom2)
		z1, err1 := p.CreateZone(acct, dom1)
		z2, err2 := p.CreateZone(acct, dom2)
		if err1 != nil || err2 != nil {
			// Duplicate probe domains across iterations: fine, skip.
			return true
		}
		if len(z1.NS) != len(z2.NS) {
			return false
		}
		for i := range z1.NS {
			if z1.NS[i] != z2.NS[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomPoolNoDuplicateNS: Amazon-style random allocation never
// assigns the same nameserver twice to one zone.
func TestQuickRandomPoolNoDuplicateNS(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetAmazon())
	p.OpenAccount("rp", false)
	f := func(n uint8) bool {
		domain := mustName(fmt.Sprintf("rq%d.com", n))
		w.registerDomain(t, domain)
		hz, err := p.CreateZone("rp", domain)
		if err != nil {
			return true // duplicate domain between quick iterations
		}
		seen := map[string]bool{}
		for _, ns := range hz.NS {
			if seen[string(ns.Host)] {
				return false
			}
			seen[string(ns.Host)] = true
		}
		return len(hz.NS) == p.NSPerZone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGlobalFixedIdenticalSets: global-fixed providers hand every customer
// the same nameservers.
func TestGlobalFixedIdenticalSets(t *testing.T) {
	w := newWorld(t)
	p := w.mustProvider(t, PresetGodaddy())
	var first []string
	for i := 0; i < 5; i++ {
		acct := fmt.Sprintf("gf-%d", i)
		p.OpenAccount(acct, false)
		domain := mustName(fmt.Sprintf("gfd%d.com", i))
		w.registerDomain(t, domain)
		hz, err := p.CreateZone(acct, domain)
		if err != nil {
			t.Fatal(err)
		}
		var hosts []string
		for _, ns := range hz.NS {
			hosts = append(hosts, string(ns.Host))
		}
		if first == nil {
			first = hosts
			continue
		}
		if len(hosts) != len(first) {
			t.Fatalf("set size changed: %v vs %v", hosts, first)
		}
		for j := range hosts {
			if hosts[j] != first[j] {
				t.Fatalf("global-fixed set differs: %v vs %v", hosts, first)
			}
		}
	}
}
