package hosting

import (
	"context"
	"net/netip"
	"testing"

	"repro/internal/dns"
	"repro/internal/dnsio"
)

// TestURServedOverRealSockets proves the attack end-to-end over the OS
// network stack: a provider nameserver (normally attached to the simulated
// fabric) is additionally exposed on a loopback UDP/TCP socket, and a real
// wire-format query retrieves the attacker's undelegated record.
func TestURServedOverRealSockets(t *testing.T) {
	w := newWorld(t)
	w.registerDomain(t, "victim.com")
	p := w.mustProvider(t, PresetClouDNS())
	p.OpenAccount("attacker", false)
	hz, err := p.CreateZone("attacker", "victim.com")
	if err != nil {
		t.Fatal(err)
	}
	hz.Zone.MustAddRR("victim.com 120 IN A 66.66.2.2")

	// Expose the same authoritative engine on a real socket.
	srv := dnsio.NewServer(hz.NS[0].Server())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := dnsio.NewClient(&dnsio.NetTransport{})
	resp, err := client.Query(context.Background(), srv.UDPAddr(), "victim.com", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.AnswersOfType(dns.TypeA)
	if len(got) != 1 || got[0].Data.(*dns.A).Addr != netip.MustParseAddr("66.66.2.2") {
		t.Errorf("UR over real socket: %v", resp.Answers)
	}
	// The protective fallback also crosses the wire.
	resp, err = client.Query(context.Background(), srv.UDPAddr(), "unhosted.org", dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	got = resp.AnswersOfType(dns.TypeA)
	if len(got) != 1 || got[0].Data.(*dns.A).Addr != p.ProtectiveAddr() {
		t.Errorf("protective record over real socket: %v", resp.Answers)
	}
}
