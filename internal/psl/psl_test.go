package psl

import (
	"testing"

	"repro/internal/dns"
)

func TestIsPublicSuffix(t *testing.T) {
	l := Default()
	for _, s := range []dns.Name{"com", "cn", "gov.cn", "edu.cn", "co.uk", "gov.kp"} {
		if !l.IsPublicSuffix(s) {
			t.Errorf("%s should be a public suffix", s)
		}
	}
	for _, s := range []dns.Name{"example.com", "google.com", "x.gov.cn", dns.Root} {
		if l.IsPublicSuffix(s) {
			t.Errorf("%s should not be a public suffix", s)
		}
	}
}

func TestPublicSuffixLongestWins(t *testing.T) {
	l := Default()
	ps, ok := l.PublicSuffix("www.beijing.gov.cn")
	if !ok || ps != "gov.cn" {
		t.Errorf("suffix = %v %v, want gov.cn", ps, ok)
	}
	ps, ok = l.PublicSuffix("example.cn")
	if !ok || ps != "cn" {
		t.Errorf("suffix = %v %v, want cn", ps, ok)
	}
	if _, ok := l.PublicSuffix("unknowntld-name"); ok {
		t.Error("unknown TLD matched a suffix")
	}
}

func TestRegistrableDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		in   dns.Name
		want dns.Name
		ok   bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"a.b.c.example.co.uk", "example.co.uk", true},
		{"beijing.gov.cn", "beijing.gov.cn", true},
		{"gov.cn", "", false}, // an eTLD has no registrable domain
		{"com", "", false},
	}
	for _, c := range cases {
		got, ok := l.RegistrableDomain(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("RegistrableDomain(%s) = %v %v, want %v %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestClassify(t *testing.T) {
	l := Default()
	cases := []struct {
		in   dns.Name
		want Category
	}{
		{"gov.cn", CategoryETLD},
		{"com", CategoryETLD},
		{"example.com", CategorySLD},
		{"api.example.com", CategorySubdomain},
		{"a.b.example.co.uk", CategorySubdomain},
		{"noexist-tld", CategoryUnknown},
	}
	for _, c := range cases {
		if got := l.Classify(c.in); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWildcardRules(t *testing.T) {
	l := New()
	l.Add("ck")
	l.AddWildcard("ck")
	if !l.IsPublicSuffix("www.ck") {
		t.Error("wildcard child should be a public suffix")
	}
	reg, ok := l.RegistrableDomain("shop.www.ck")
	if !ok || reg != "shop.www.ck" {
		t.Errorf("RegistrableDomain under wildcard = %v %v", reg, ok)
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryETLD.String() != "eTLD" || CategorySLD.String() != "SLD" ||
		CategorySubdomain.String() != "subdomain" || CategoryUnknown.String() != "unknown" {
		t.Error("category names wrong")
	}
}

func TestSuffixesSorted(t *testing.T) {
	l := Default()
	s := l.Suffixes()
	if len(s) < 30 {
		t.Fatalf("only %d suffixes", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("not sorted at %d: %v >= %v", i, s[i-1], s[i])
		}
	}
}
