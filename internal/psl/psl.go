// Package psl provides a public-suffix list in the spirit of
// publicsuffix.org, covering the suffixes the paper's Appendix C probes
// (multi-label eTLDs such as gov.cn, edu.cn, gov.kp) plus the generic TLDs
// the world generator registers. The hosting-provider policy engine uses it
// to decide whether a requested zone is an SLD, a subdomain, or an eTLD.
package psl

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/dns"
)

// List is a set of public suffixes with wildcard support ("*.ck" style
// entries are expressed by adding the parent with AddWildcard).
type List struct {
	mu        sync.RWMutex
	suffixes  map[dns.Name]bool
	wildcards map[dns.Name]bool
}

// New creates an empty list.
func New() *List {
	return &List{
		suffixes:  make(map[dns.Name]bool),
		wildcards: make(map[dns.Name]bool),
	}
}

// Default returns a list preloaded with the generic TLDs and the
// country-code suffixes used across the reproduction, including the
// government/education eTLDs named in Appendix C.
func Default() *List {
	l := New()
	for _, s := range []string{
		// generic TLDs
		"com", "net", "org", "io", "dev", "app", "info", "biz", "xyz",
		"online", "site", "store", "tech", "cloud", "ai",
		// country codes
		"cn", "us", "uk", "de", "fr", "jp", "kr", "ru", "br", "in",
		"it", "nl", "se", "au", "ca", "es", "ch", "pl", "tr", "mx",
		"id", "vn", "sa", "za", "eg", "na", "gd", "fm", "kp", "ir",
		// multi-label public suffixes (registry-operated eTLDs)
		"gov.cn", "edu.cn", "com.cn", "net.cn", "org.cn", "ac.cn",
		"co.uk", "org.uk", "gov.uk", "ac.uk",
		"com.br", "gov.br", "co.jp", "go.jp", "ac.jp", "co.kr", "go.kr",
		"gov.kp", "edu.kp", "gov.gd", "edu.fm", "gov.in", "ac.in",
		"com.au", "gov.au", "edu.au", "co.za", "gov.za",
		"com.tr", "gov.tr", "com.mx", "gob.mx",
	} {
		l.Add(dns.MustParseName(s))
	}
	return l
}

// Add registers a public suffix.
func (l *List) Add(suffix dns.Name) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.suffixes[suffix] = true
}

// AddWildcard registers a wildcard rule: every direct child of parent is a
// public suffix (like "*.ck" in the real PSL).
func (l *List) AddWildcard(parent dns.Name) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wildcards[parent] = true
}

// IsPublicSuffix reports whether the name itself is a public suffix (an
// "eTLD" in the paper's terminology, which includes plain TLDs).
func (l *List) IsPublicSuffix(name dns.Name) bool {
	if name == dns.Root {
		return false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.suffixes[name] {
		return true
	}
	return l.wildcards[name.Parent()]
}

// PublicSuffix returns the longest public suffix of name and whether one was
// found.
func (l *List) PublicSuffix(name dns.Name) (dns.Name, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	// Walking from the most specific name upward, the first registered
	// suffix encountered is the longest one.
	for n := name; n != dns.Root; n = n.Parent() {
		if l.suffixes[n] || l.wildcards[n.Parent()] {
			return n, true
		}
	}
	return dns.Root, false
}

// RegistrableDomain returns the "SLD" in the paper's terminology: the public
// suffix plus one label. It returns false when the name is itself a public
// suffix or no suffix matches.
func (l *List) RegistrableDomain(name dns.Name) (dns.Name, bool) {
	suffix, ok := l.PublicSuffix(name)
	if !ok || name == suffix {
		return dns.Root, false
	}
	// Walk down from the suffix by one label.
	labels := name.Labels()
	suffixLabels := suffix.CountLabels()
	idx := len(labels) - suffixLabels - 1
	if idx < 0 {
		return dns.Root, false
	}
	return dns.Name(strings.Join(labels[idx:], ".")), true
}

// Classify names the paper's domain categories for a hosting request.
type Category int

// Domain categories from Appendix C's "supported domain" axis.
const (
	CategoryETLD Category = iota
	CategorySLD
	CategorySubdomain
	CategoryUnknown
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CategoryETLD:
		return "eTLD"
	case CategorySLD:
		return "SLD"
	case CategorySubdomain:
		return "subdomain"
	}
	return "unknown"
}

// Classify determines whether name is an eTLD, an SLD, or a subdomain of an
// SLD under this list.
func (l *List) Classify(name dns.Name) Category {
	if l.IsPublicSuffix(name) {
		return CategoryETLD
	}
	reg, ok := l.RegistrableDomain(name)
	if !ok {
		return CategoryUnknown
	}
	if reg == name {
		return CategorySLD
	}
	return CategorySubdomain
}

// Suffixes returns all registered suffixes, sorted (for dumps and tests).
func (l *List) Suffixes() []dns.Name {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]dns.Name, 0, len(l.suffixes))
	for s := range l.suffixes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
