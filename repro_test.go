package repro

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hosting"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(context.Background(), TinyScale(), 42)
	})
	if envErr != nil {
		t.Fatalf("NewEnv: %v", envErr)
	}
	return envVal
}

func TestAllExperimentsRun(t *testing.T) {
	env := sharedEnv(t)
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			f, err := exp.Run(context.Background(), env)
			if err != nil {
				t.Fatalf("experiment %s: %v", exp.ID, err)
			}
			if len(f.Lines) == 0 {
				t.Error("no output lines")
			}
			if out := f.Render(); !strings.Contains(out, exp.ID) {
				t.Errorf("render missing ID: %q", out)
			}
		})
	}
}

func TestExperimentByID(t *testing.T) {
	if _, ok := ExperimentByID("table1"); !ok {
		t.Error("table1 not found")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("bogus experiment found")
	}
	if len(Experiments()) != 17 {
		t.Errorf("experiments = %d, want 17 (E1-E17)", len(Experiments()))
	}
}

func TestKeyMetricsShape(t *testing.T) {
	env := sharedEnv(t)
	ctx := context.Background()

	f, err := ExpTable1(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Metrics["malicious_ur_share"]; s <= 0.05 || s >= 0.6 {
		t.Errorf("malicious UR share %.3f outside plausible band (paper 0.254)", s)
	}
	if f.Metrics["txt_malicious_rate"] >= f.Metrics["a_malicious_rate"] {
		t.Error("TXT malicious rate should be far below A (paper: 3.08% vs 28.92%)")
	}

	f, err = ExpFigure2(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["top_provider_is_cloudflare"] != 1 {
		t.Error("Cloudflare is not the top Figure 2 provider")
	}

	f, err = ExpFNRate(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["false_negatives"] != 0 {
		t.Errorf("false negatives = %v, paper reports zero", f.Metrics["false_negatives"])
	}
	if f.Metrics["evaluated"] == 0 {
		t.Error("FN check evaluated nothing")
	}

	f, err = ExpBypass(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["default_c2_reached"] != 1 {
		t.Error("UR attack did not bypass default defenses")
	}
	if f.Metrics["strict_c2_reached"] != 0 {
		t.Error("strict direct-DNS blocking did not stop the UR attack")
	}

	f, err = ExpTXTShare(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Metrics["email_share"]; s < 0.5 {
		t.Errorf("email share %.2f too low (paper 0.9095)", s)
	}

	f, err = ExpSpecter(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["specter_vendor_flags"] != 0 {
		t.Error("Specter C2 should have zero vendor flags")
	}
	if f.Metrics["specter_urs_malicious"] == 0 {
		t.Error("Specter URs not flagged malicious")
	}

	f, err = ExpSPF(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["spf_nameservers"] != 11 {
		t.Errorf("SPF nameservers = %v, want 11", f.Metrics["spf_nameservers"])
	}
	if f.Metrics["spf_high_flows"] == 0 {
		t.Error("no high-risk SPF flows")
	}

	f, err = ExpDarkIoT(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["v2023_emerdns_queries"] != 0 {
		t.Error("the 2023 Dark.IoT variant must not query EmerDNS")
	}
}

func TestPostDisclosureExperiment(t *testing.T) {
	env := sharedEnv(t)
	f, err := ExpPostDisclosure(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	// The robust §6 invariant: the provider that adopted full NS
	// verification stops serving malicious URs entirely, while the
	// ecosystem as a whole remains exploitable. (Aggregate counts between
	// the two generated worlds are noisy at small scales because the
	// policy change perturbs every later random draw.)
	if f.Metrics["tencent_pre_malicious"] == 0 {
		t.Error("pre-disclosure Tencent carried no malicious URs; experiment is vacuous")
	}
	if f.Metrics["tencent_post_malicious"] != 0 {
		t.Errorf("Tencent still serves %v malicious URs after NS verification",
			f.Metrics["tencent_post_malicious"])
	}
	if f.Metrics["post_malicious"] == 0 {
		t.Error("post-disclosure world should remain exploitable (paper: Cloudflare/Alibaba)")
	}
}

func TestSubdomainRecoveryExperiment(t *testing.T) {
	env := sharedEnv(t)
	f, err := ExpSubdomains(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["recovered"] == 0 {
		t.Fatal("no subdomains recovered from PDNS")
	}
	if f.Metrics["subdomain_suspicious"] == 0 {
		t.Error("no suspicious URs at recovered subdomains (hidden plants exist)")
	}
}

func TestMXExperiment(t *testing.T) {
	env := sharedEnv(t)
	f, err := ExpMX(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics["mx_urs"] == 0 {
		t.Error("no MX URs collected")
	}
	if f.Metrics["mx_correct"] == 0 {
		t.Error("no legitimate MX URs excluded (CDN fleets should produce them)")
	}
	if f.Metrics["mx_suspicious"] == 0 {
		t.Error("no suspicious MX URs (attacker MX plants exist)")
	}
}

func TestAblationInflatesSuspiciousSet(t *testing.T) {
	env := sharedEnv(t)
	f, err := ExpAblation(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	// Single-condition drops never shrink the suspicious set; the conditions
	// overlap (an IP caught by the IP subset is often also caught by AS or
	// cert), so small or zero deltas are legitimate results.
	for _, name := range []string{"no-IP-subset", "no-AS-subset", "no-geo-subset",
		"no-cert-subset", "no-pdns", "no-http-filter"} {
		if f.Metrics[name+"_delta"] < 0 {
			t.Errorf("%s delta = %v, suspicious set shrank", name, f.Metrics[name+"_delta"])
		}
	}
	// Dropping PDNS must surface the still-alive past-delegation URs (old
	// business page, legacy certificate) as suspicious.
	if f.Metrics["no-pdns_delta"] <= 0 {
		t.Errorf("no-pdns delta = %v, expected inflation", f.Metrics["no-pdns_delta"])
	}
	// With every condition off, the whole collected set floods in and the
	// delegated records themselves become false negatives.
	if f.Metrics["all-conditions-off_delta"] <= 0 {
		t.Errorf("all-off delta = %v", f.Metrics["all-conditions-off_delta"])
	}
	if f.Metrics["all-conditions-off_fn"] == 0 {
		t.Error("all-off should produce false negatives on delegated records")
	}
}

// TestTable2MatchesPaper pins the audited policy matrix to the published
// Table 2, row by row.
func TestTable2MatchesPaper(t *testing.T) {
	rows, err := AuditProviders(hosting.AppendixCPresets(), 7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Table2Row{
		"Alibaba Cloud": {NSAllocation: "global-fixed", WithoutVerification: true,
			Unregistered: false, Subdomain: true, SLD: true, ETLD: true,
			DupSingleUser: false, DupCrossUser: false, NoRetrieval: false},
		"Amazon": {NSAllocation: "random", WithoutVerification: true,
			Unregistered: true, Subdomain: true, SLD: true, ETLD: true,
			DupSingleUser: true, DupCrossUser: true, NoRetrieval: true},
		"Baidu Cloud": {NSAllocation: "global-fixed", WithoutVerification: true,
			Unregistered: false, Subdomain: false, SLD: true, ETLD: true,
			DupSingleUser: false, DupCrossUser: false, NoRetrieval: false},
		"ClouDNS": {NSAllocation: "global-fixed", WithoutVerification: true,
			Unregistered: true, Subdomain: true, SLD: true, ETLD: true,
			DupSingleUser: false, DupCrossUser: false, NoRetrieval: true},
		"Cloudflare": {NSAllocation: "account-fixed", WithoutVerification: true,
			Unregistered: false, Subdomain: true, SLD: true, ETLD: true,
			DupSingleUser: false, DupCrossUser: true, NoRetrieval: false},
		"Godaddy": {NSAllocation: "global-fixed", WithoutVerification: true,
			Unregistered: false, Subdomain: true, SLD: true, ETLD: true,
			DupSingleUser: false, DupCrossUser: false, NoRetrieval: true},
		"Tencent Cloud": {NSAllocation: "account-fixed", WithoutVerification: true,
			Unregistered: false, Subdomain: false, SLD: true, ETLD: true,
			DupSingleUser: false, DupCrossUser: true, NoRetrieval: false},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, got := range rows {
		w, ok := want[got.Provider]
		if !ok {
			t.Errorf("unexpected provider %s", got.Provider)
			continue
		}
		w.Provider = got.Provider
		if got != w {
			t.Errorf("%s:\n got  %+v\n want %+v", got.Provider, got, w)
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "Cloudflare") {
		t.Error("render missing provider")
	}
}

func TestPostDisclosureAuditShrinksOptions(t *testing.T) {
	var post []hosting.Policy
	for _, p := range hosting.AppendixCPresets() {
		post = append(post, hosting.PostDisclosure(p, nil))
	}
	rows, err := AuditProviders(post, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Provider == "Tencent Cloud" && r.WithoutVerification {
			t.Error("post-disclosure Tencent still hosts without verification")
		}
		// Cloudflare and Alibaba remain exploitable, per the paper's re-test.
		if r.Provider == "Cloudflare" && !r.WithoutVerification {
			t.Error("post-disclosure Cloudflare should still be exploitable")
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	env := sharedEnv(t)
	res := env.Result
	for name, out := range map[string]string{
		"table1":  RenderTable1(res),
		"figure2": RenderFigure2(res, 5),
		"figure3": RenderFigure3(res),
		"summary": RenderCategorySummary(res),
	} {
		if len(out) == 0 {
			t.Errorf("%s: empty render", name)
		}
	}
	tops := TopMaliciousDomains(res, 5)
	if len(tops) == 0 {
		t.Error("no top malicious domains")
	}
	if len(tops) > 5 {
		t.Errorf("top list too long: %d", len(tops))
	}
}

func TestRenderFindingsMarkdown(t *testing.T) {
	env := sharedEnv(t)
	f, err := ExpFNRate(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	md := RenderFindingsMarkdown([]*Findings{f})
	for _, want := range []string{"# URHunter reproduction findings", "## fnrate",
		"**Paper:**", "| metric | value |", "false_negatives"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if got := RenderFindingsMarkdown(nil); !strings.HasPrefix(got, "# URHunter") {
		t.Errorf("empty findings render: %q", got)
	}
}

// TestDeterministicGeneration: the same scale and seed must produce worlds
// whose measured aggregates are identical — map-iteration nondeterminism in
// the generator would break reproducibility of every number in
// EXPERIMENTS.md.
func TestDeterministicGeneration(t *testing.T) {
	run := func() []core.Table1Row {
		w, err := GenerateWorld(TinyScale(), 1234)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunURHunter(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table1()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs:\n %+v\n %+v", i, a[i], b[i])
		}
	}
}

// TestSecondSeedShapeStability guards against seed-specific calibration
// luck: a different world must still show the paper's coarse shapes.
func TestSecondSeedShapeStability(t *testing.T) {
	env, err := NewEnv(context.Background(), TinyScale(), 777)
	if err != nil {
		t.Fatal(err)
	}
	rows := env.Result.Table1()
	total, aRow, txtRow := rows[2], rows[0], rows[1]
	if total.MaliciousURs == 0 || total.URs == 0 {
		t.Fatal("empty measurement")
	}
	share := float64(total.MaliciousURs) / float64(total.URs)
	if share < 0.05 || share > 0.65 {
		t.Errorf("malicious share %.2f out of band at seed 777", share)
	}
	// The TXT-vs-A rate gap needs a meaningful TXT sample; tiny worlds at
	// unlucky seeds have too few TXT URs for the comparison to be stable.
	if txtRow.URs >= 100 && aRow.URs > 0 {
		if float64(txtRow.MaliciousURs)/float64(txtRow.URs) >=
			float64(aRow.MaliciousURs)/float64(aRow.URs) {
			t.Error("TXT rate >= A rate at seed 777")
		}
	}
	fig := env.Result.Figure2(1)
	if len(fig) == 0 || fig[0].Provider != "Cloudflare" {
		t.Errorf("top provider at seed 777: %v", fig)
	}
	_, fn, err := env.Pipe.FalseNegativeCheck(context.Background(), env.Result)
	if err != nil || fn != 0 {
		t.Errorf("seed 777 FN check: %d %v", fn, err)
	}
}
