package repro

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/dns"
	"repro/internal/hosting"
	"repro/internal/ipam"
	"repro/internal/psl"
	"repro/internal/registry"
	"repro/internal/simnet"
)

// Table2Row is one provider's audited hosting strategy — a row of the
// paper's Table 2.
type Table2Row struct {
	Provider            string
	NSAllocation        string
	WithoutVerification bool
	Unregistered        bool
	Subdomain           bool
	SLD                 bool
	ETLD                bool
	DupSingleUser       bool
	DupCrossUser        bool
	NoRetrieval         bool
}

// AuditProviders reruns the Appendix C investigation: it stands up each of
// the seven providers in a fresh environment and probes the four test
// conditions with registered, unregistered, subdomain, and eTLD targets,
// exactly as §C's two-account methodology does. The probes mirror the
// paper's ethics stance: records written during a real audit point at
// localhost and are removed afterwards; here the audit zones are deleted at
// the end of each probe run.
func AuditProviders(policies []hosting.Policy, seed int64) ([]Table2Row, error) {
	fabric := simnet.New(seed)
	ipdb := ipam.New()
	reg, err := registry.New(fabric, ipdb, nil)
	if err != nil {
		return nil, err
	}
	for _, tld := range []dns.Name{"com", "test", "cn"} {
		if err := reg.CreateTLD(tld, 1); err != nil {
			return nil, err
		}
	}
	if err := reg.CreateTLD("gov.cn", 1); err != nil {
		return nil, err
	}
	list := psl.Default()
	deps := hosting.Deps{Fabric: fabric, IPDB: ipdb, Registry: reg, PSL: list, Seed: seed}

	var rows []Table2Row
	for i, pol := range policies {
		p, err := hosting.NewProvider(pol, depsWithSeed(deps, seed+int64(i)+1))
		if err != nil {
			return nil, err
		}
		row, err := auditOne(reg, p, i)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func depsWithSeed(d hosting.Deps, seed int64) hosting.Deps {
	d.Seed = seed
	return d
}

// auditOne probes a single provider. Probe domains are unique per provider
// so runs do not interfere.
func auditOne(reg *registry.Registry, p *hosting.Provider, idx int) (Table2Row, error) {
	row := Table2Row{
		Provider:     p.Name,
		NSAllocation: p.NSAllocation.String(),
		NoRetrieval:  !p.SupportsRetrieval,
	}
	// Registered popular-style domain owned by someone else.
	popular := dns.Name(fmt.Sprintf("audit-popular-%d.com", idx))
	if err := reg.SetDelegation(popular, []dns.Name{"ns1.someoneelse.test"}, nil,
		time.Now().AddDate(-1, 0, 0)); err != nil {
		return row, err
	}
	accA := p.OpenAccount(fmt.Sprintf("audit-a-%d", idx), false)
	accB := p.OpenAccount(fmt.Sprintf("audit-b-%d", idx), false)
	// Subdomain hosting may sit behind a payment wall (Cloudflare); the
	// audit follows the paper and pays for that probe only.
	accPaid := p.OpenAccount(fmt.Sprintf("audit-paid-%d", idx), true)

	var cleanup []*hosting.HostedZone
	defer func() {
		// Ethics: remove every audit UR after testing (Appendix A).
		for _, hz := range cleanup {
			p.DeleteZone(hz)
		}
	}()

	// (1) Hosting without verification: the zone is created and served for a
	// domain the account does not own.
	hz, err := p.CreateZone(accA.ID, popular)
	if err == nil {
		cleanup = append(cleanup, hz)
		hz.Zone.MustAddRR(fmt.Sprintf("%s 60 IN A 127.0.0.1", popular))
		hz.Zone.MustAddRR(fmt.Sprintf(`%s 60 IN TXT "research audit; contact urhunter@example.test"`, popular))
		row.WithoutVerification = hz.Served()
		row.SLD = true
	}

	// (2) Unregistered domains.
	unreg := dns.Name(fmt.Sprintf("audit-unregistered-%d.com", idx))
	if hz, err := p.CreateZone(accA.ID, unreg); err == nil {
		cleanup = append(cleanup, hz)
		row.Unregistered = true
	}

	// (3) Subdomains of an SLD.
	sub := popular.Child("api")
	if hz, err := p.CreateZone(accA.ID, sub); err == nil {
		cleanup = append(cleanup, hz)
		row.Subdomain = true
	} else if hz, err := p.CreateZone(accPaid.ID, sub); err == nil {
		cleanup = append(cleanup, hz)
		row.Subdomain = true
	}

	// (4) eTLDs (public suffixes such as gov.cn).
	if hz, err := p.CreateZone(accA.ID, "gov.cn"); err == nil {
		cleanup = append(cleanup, hz)
		row.ETLD = true
	}

	// (5) Duplicate hosted domains, single and cross user.
	if hz, err := p.CreateZone(accA.ID, popular); err == nil {
		cleanup = append(cleanup, hz)
		row.DupSingleUser = true
	}
	if hz, err := p.CreateZone(accB.ID, popular); err == nil {
		cleanup = append(cleanup, hz)
		row.DupCrossUser = true
	}
	return row, nil
}

// RenderTable2 formats the audit like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	var sb strings.Builder
	sb.WriteString("Table 2: Hosting strategy for common DNS hosting service providers\n")
	fmt.Fprintf(&sb, "%-15s %-13s %-8s %-7s %-7s %-4s %-5s %-9s %-9s %-6s\n",
		"Provider", "NS policy", "NoVerif", "Unreg", "Subdom", "SLD", "eTLD",
		"DupSingle", "DupCross", "NoRetr")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %-13s %-8s %-7s %-7s %-4s %-5s %-9s %-9s %-6s\n",
			r.Provider, r.NSAllocation, mark(r.WithoutVerification),
			mark(r.Unregistered), mark(r.Subdomain), mark(r.SLD), mark(r.ETLD),
			mark(r.DupSingleUser), mark(r.DupCrossUser), mark(r.NoRetrieval))
	}
	return sb.String()
}

// ExpTable2 reproduces Table 2 via the audit.
func ExpTable2(_ context.Context, _ *Env) (*Findings, error) {
	f := &Findings{ID: "table2", Title: "Hosting strategies (Appendix C audit)",
		Paper: "all seven providers host without verification; Amazon/ClouDNS accept unregistered domains; most accept eTLDs (gov.cn); Amazon allows duplicates even for one user; Godaddy/ClouDNS/Amazon lack retrieval"}
	rows, err := AuditProviders(hosting.AppendixCPresets(), 7)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(strings.TrimRight(RenderTable2(rows), "\n"), "\n") {
		f.addf("%s", line)
	}
	allNoVerif := true
	for _, r := range rows {
		if !r.WithoutVerification {
			allNoVerif = false
		}
	}
	f.metric("all_host_without_verification", boolMetric(allNoVerif))
	return f, nil
}
