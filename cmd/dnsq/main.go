// Command dnsq is a dig-like query tool built on the library's DNS stack.
// It queries real DNS servers over UDP with TCP fallback, using the same
// codec and client the measurement pipeline uses.
//
// Usage:
//
//	dnsq @server:port name [type]     query a server
//	dnsq -json @server:port name [type]
//	                                  same, but emit the response as one
//	                                  JSON document (for scripts and jq)
//	dnsq -demo [name [type]]          start an in-process authoritative
//	                                  server on loopback, query it, exit
//
// The -demo mode is a self-contained proof that the stack speaks genuine
// wire-format DNS over real sockets: it serves a small zone (including an
// oversized TXT record that forces the TCP fallback) and prints both
// exchanges.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/zone"
)

func main() {
	demo := flag.Bool("demo", false, "serve and query a demo zone on loopback")
	flag.BoolVar(&jsonOut, "json", false, "emit responses as JSON instead of dig-style text")
	flag.Parse()
	args := flag.Args()

	if *demo {
		if err := runDemo(args); err != nil {
			fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if len(args) < 2 || !strings.HasPrefix(args[0], "@") {
		fmt.Fprintln(os.Stderr, "usage: dnsq @server:port name [type] | dnsq -demo")
		os.Exit(2)
	}
	serverArg := strings.TrimPrefix(args[0], "@")
	server, err := netip.ParseAddrPort(serverArg)
	if err != nil {
		// Bare address: default to port 53.
		addr, aerr := netip.ParseAddr(serverArg)
		if aerr != nil {
			fmt.Fprintf(os.Stderr, "dnsq: bad server address: %v\n", err)
			os.Exit(2)
		}
		server = netip.AddrPortFrom(addr, 53)
	}
	name, qtype, err := parseNameType(args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(2)
	}
	if err := query(server, name, qtype); err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(1)
	}
}

func parseNameType(args []string) (dns.Name, dns.Type, error) {
	name, err := dns.ParseName(args[0])
	if err != nil {
		return dns.Root, dns.TypeNone, err
	}
	qtype := dns.TypeA
	if len(args) > 1 {
		qtype, err = dns.ParseType(strings.ToUpper(args[1]))
		if err != nil {
			return dns.Root, dns.TypeNone, err
		}
	}
	return name, qtype, nil
}

// jsonOut selects machine-readable output for both direct and demo queries.
var jsonOut bool

// jsonRR is the wire form of one resource record in -json output.
type jsonRR struct {
	Name  string `json:"name"`
	TTL   uint32 `json:"ttl"`
	Class string `json:"class"`
	Type  string `json:"type"`
	Data  string `json:"data"`
}

// jsonResponse is the -json document for one query exchange.
type jsonResponse struct {
	Server     string         `json:"server"`
	ID         uint16         `json:"id"`
	RCode      string         `json:"rcode"`
	Flags      map[string]bool `json:"flags"`
	Question   []string       `json:"question"`
	Answers    []jsonRR       `json:"answers"`
	Authority  []jsonRR       `json:"authority,omitempty"`
	Additional []jsonRR       `json:"additional,omitempty"`
}

func jsonRRs(rrs []dns.RR) []jsonRR {
	out := make([]jsonRR, 0, len(rrs))
	for _, rr := range rrs {
		out = append(out, jsonRR{
			Name:  rr.Name.String(),
			TTL:   rr.TTL,
			Class: rr.Class.String(),
			Type:  rr.Type().String(),
			Data:  rr.Data.String(),
		})
	}
	return out
}

func query(server netip.AddrPort, name dns.Name, qtype dns.Type) error {
	client := dnsio.NewClient(&dnsio.NetTransport{})
	resp, err := client.Query(context.Background(), server, name, qtype)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Print(resp.Summary())
		return nil
	}
	doc := jsonResponse{
		Server: server.String(),
		ID:     resp.Header.ID,
		RCode:  resp.Header.RCode.String(),
		Flags: map[string]bool{
			"aa": resp.Header.Authoritative,
			"tc": resp.Header.Truncated,
			"rd": resp.Header.RecursionDesired,
			"ra": resp.Header.RecursionAvailable,
		},
		Answers:    jsonRRs(resp.Answers),
		Authority:  jsonRRs(resp.Authority),
		Additional: jsonRRs(resp.Additional),
	}
	for _, q := range resp.Questions {
		doc.Question = append(doc.Question, q.String())
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runDemo(args []string) error {
	z, err := zone.Parse("demo.test", `
demo.test 3600 IN SOA ns1.demo.test hostmaster.demo.test 1 7200 3600 1209600 300
demo.test 3600 IN NS ns1.demo.test
demo.test 300 IN A 192.0.2.80
demo.test 300 IN TXT "v=spf1 ip4:192.0.2.80 -all"
www.demo.test 300 IN CNAME demo.test
big.demo.test 300 IN TXT "`+strings.Repeat("x", 250)+`" "`+strings.Repeat("y", 250)+`" "`+strings.Repeat("z", 250)+`"
`)
	if err != nil {
		return err
	}
	srv := authority.NewServer()
	if err := srv.AddZone(z); err != nil {
		return err
	}
	netSrv := dnsio.NewServer(srv)
	if err := netSrv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer netSrv.Close()
	fmt.Printf(";; demo authoritative server on udp/tcp %s\n\n", netSrv.UDPAddr())

	queries := [][2]string{{"demo.test", "A"}, {"www.demo.test", "A"},
		{"demo.test", "TXT"}, {"big.demo.test", "TXT"}}
	if len(args) > 0 {
		name, qtype, err := parseNameType(args)
		if err != nil {
			return err
		}
		queries = [][2]string{{string(name), qtype.String()}}
	}
	for _, q := range queries {
		name, qtype, err := parseNameType([]string{q[0], q[1]})
		if err != nil {
			return err
		}
		fmt.Printf(";; query %s %s\n", name.String(), qtype)
		if err := query(netSrv.UDPAddr(), name, qtype); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
