// Command dnsq is a dig-like query tool built on the library's DNS stack.
// It queries real DNS servers over UDP with TCP fallback, forced TCP, DoT
// (RFC 7858), or DoH (RFC 8484), using the same codec and client the
// measurement pipeline uses.
//
// Usage:
//
//	dnsq @server:port name [type]     query a server
//	dnsq -transport dot @server name  same, over an encrypted transport
//	                                  (udp, tcp, dot, doh)
//	dnsq -json @server:port name [type]
//	                                  same, but emit the response as one
//	                                  JSON document (for scripts and jq)
//	dnsq -demo [name [type]]          start an in-process authoritative
//	                                  server on loopback, query it, exit
//
// A bare @server address defaults its port to the transport's convention:
// 53 for udp/tcp, 853 for dot, 443 for doh. DoH queries real resolvers as
// https://server/dns-query POSTs.
//
// The -demo mode is a self-contained proof that the stack speaks genuine
// wire-format DNS over real sockets: it serves a small zone (including an
// oversized TXT record that forces the TCP fallback) and prints both
// exchanges. With -transport dot it additionally starts a TLS listener under
// a self-signed certificate; with -transport doh, an RFC 8484 HTTP endpoint.
package main

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"strings"

	"repro/internal/authority"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/transport"
	"repro/internal/zone"
)

func main() {
	demo := flag.Bool("demo", false, "serve and query a demo zone on loopback")
	flag.BoolVar(&jsonOut, "json", false, "emit responses as JSON instead of dig-style text")
	flag.StringVar(&transportName, "transport", "udp", "wire transport: udp (TCP fallback on truncation), tcp, dot, or doh")
	flag.Parse()
	args := flag.Args()

	switch transportName {
	case "udp", "tcp", "dot", "doh":
	default:
		fmt.Fprintf(os.Stderr, "dnsq: unknown -transport %q (want udp, tcp, dot, or doh)\n", transportName)
		os.Exit(2)
	}

	if *demo {
		if err := runDemo(args); err != nil {
			fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if len(args) < 2 || !strings.HasPrefix(args[0], "@") {
		fmt.Fprintln(os.Stderr, "usage: dnsq [-transport udp|tcp|dot|doh] @server:port name [type] | dnsq -demo")
		os.Exit(2)
	}
	serverArg := strings.TrimPrefix(args[0], "@")
	server, err := netip.ParseAddrPort(serverArg)
	if err != nil {
		// Bare address: default to the transport's conventional port.
		addr, aerr := netip.ParseAddr(serverArg)
		if aerr != nil {
			fmt.Fprintf(os.Stderr, "dnsq: bad server address: %v\n", err)
			os.Exit(2)
		}
		server = netip.AddrPortFrom(addr, defaultPort(transportName))
	}
	name, qtype, err := parseNameType(args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(2)
	}
	if err := query(clientTransport(), server, name, qtype); err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(1)
	}
}

// defaultPort is the transport's conventional service port for bare @server
// addresses.
func defaultPort(name string) uint16 {
	switch name {
	case "dot":
		return transport.DoTPort
	case "doh":
		return 443
	}
	return 53
}

// clientTransport builds the dnsio.Transport the selected -transport name
// implies for real-server queries.
func clientTransport() dnsio.Transport {
	switch transportName {
	case "tcp":
		return forcedTCP{&dnsio.NetTransport{}}
	case "dot":
		return &transport.NetDoT{}
	case "doh":
		return &transport.NetDoH{Scheme: "https"}
	}
	return &dnsio.NetTransport{}
}

// forcedTCP pins every exchange to the stream path, skipping the UDP attempt
// entirely — dig +tcp.
type forcedTCP struct {
	inner dnsio.Transport
}

func (t forcedTCP) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, _ bool) ([]byte, error) {
	return t.inner.Exchange(ctx, server, packed, true)
}

func parseNameType(args []string) (dns.Name, dns.Type, error) {
	name, err := dns.ParseName(args[0])
	if err != nil {
		return dns.Root, dns.TypeNone, err
	}
	qtype := dns.TypeA
	if len(args) > 1 {
		qtype, err = dns.ParseType(strings.ToUpper(args[1]))
		if err != nil {
			return dns.Root, dns.TypeNone, err
		}
	}
	return name, qtype, nil
}

// jsonOut selects machine-readable output for both direct and demo queries;
// transportName selects the wire transport.
var (
	jsonOut       bool
	transportName string
)

// jsonRR is the wire form of one resource record in -json output.
type jsonRR struct {
	Name  string `json:"name"`
	TTL   uint32 `json:"ttl"`
	Class string `json:"class"`
	Type  string `json:"type"`
	Data  string `json:"data"`
}

// jsonResponse is the -json document for one query exchange.
type jsonResponse struct {
	Server     string          `json:"server"`
	Transport  string          `json:"transport"`
	ID         uint16          `json:"id"`
	RCode      string          `json:"rcode"`
	Flags      map[string]bool `json:"flags"`
	Question   []string        `json:"question"`
	Answers    []jsonRR        `json:"answers"`
	Authority  []jsonRR        `json:"authority,omitempty"`
	Additional []jsonRR        `json:"additional,omitempty"`
}

func jsonRRs(rrs []dns.RR) []jsonRR {
	out := make([]jsonRR, 0, len(rrs))
	for _, rr := range rrs {
		out = append(out, jsonRR{
			Name:  rr.Name.String(),
			TTL:   rr.TTL,
			Class: rr.Class.String(),
			Type:  rr.Type().String(),
			Data:  rr.Data.String(),
		})
	}
	return out
}

func query(tr dnsio.Transport, server netip.AddrPort, name dns.Name, qtype dns.Type) error {
	client := dnsio.NewClient(tr)
	resp, err := client.Query(context.Background(), server, name, qtype)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Print(resp.Summary())
		return nil
	}
	doc := jsonResponse{
		Server:    server.String(),
		Transport: transportName,
		ID:        resp.Header.ID,
		RCode:     resp.Header.RCode.String(),
		Flags: map[string]bool{
			"aa": resp.Header.Authoritative,
			"tc": resp.Header.Truncated,
			"rd": resp.Header.RecursionDesired,
			"ra": resp.Header.RecursionAvailable,
		},
		Answers:    jsonRRs(resp.Answers),
		Authority:  jsonRRs(resp.Authority),
		Additional: jsonRRs(resp.Additional),
	}
	for _, q := range resp.Questions {
		doc.Question = append(doc.Question, q.String())
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runDemo(args []string) error {
	z, err := zone.Parse("demo.test", `
demo.test 3600 IN SOA ns1.demo.test hostmaster.demo.test 1 7200 3600 1209600 300
demo.test 3600 IN NS ns1.demo.test
demo.test 300 IN A 192.0.2.80
demo.test 300 IN TXT "v=spf1 ip4:192.0.2.80 -all"
www.demo.test 300 IN CNAME demo.test
big.demo.test 300 IN TXT "`+strings.Repeat("x", 250)+`" "`+strings.Repeat("y", 250)+`" "`+strings.Repeat("z", 250)+`"
`)
	if err != nil {
		return err
	}
	srv := authority.NewServer()
	if err := srv.AddZone(z); err != nil {
		return err
	}

	// The selected transport decides which loopback listener the demo
	// starts and which client carries the queries.
	var tr dnsio.Transport
	var target netip.AddrPort
	switch transportName {
	case "dot":
		cert, pool, err := transport.SelfSignedCert("127.0.0.1")
		if err != nil {
			return err
		}
		dotSrv, err := transport.ServeDoT(srv, "127.0.0.1:0", cert)
		if err != nil {
			return err
		}
		defer dotSrv.Close()
		fmt.Printf(";; demo DoT server (self-signed) on tls %s\n\n", dotSrv.Addr())
		tr = &transport.NetDoT{TLS: &tls.Config{RootCAs: pool}}
		target = dotSrv.Addr()
	case "doh":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle(transport.DoHPath, &transport.DoHHandler{Responder: srv})
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		defer hs.Close()
		ap := ln.Addr().(*net.TCPAddr).AddrPort()
		fmt.Printf(";; demo DoH endpoint on http://%s%s\n\n", ap, transport.DoHPath)
		tr = &transport.NetDoH{}
		target = ap
	default:
		netSrv := dnsio.NewServer(srv)
		if err := netSrv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer netSrv.Close()
		fmt.Printf(";; demo authoritative server on udp/tcp %s\n\n", netSrv.UDPAddr())
		tr = clientTransport()
		target = netSrv.UDPAddr()
		if transportName == "tcp" {
			target = netSrv.TCPAddr()
		}
	}

	queries := [][2]string{{"demo.test", "A"}, {"www.demo.test", "A"},
		{"demo.test", "TXT"}, {"big.demo.test", "TXT"}}
	if len(args) > 0 {
		name, qtype, err := parseNameType(args)
		if err != nil {
			return err
		}
		queries = [][2]string{{string(name), qtype.String()}}
	}
	for _, q := range queries {
		name, qtype, err := parseNameType([]string{q[0], q[1]})
		if err != nil {
			return err
		}
		fmt.Printf(";; query %s %s (%s)\n", name.String(), qtype, transportName)
		if err := query(tr, target, name, qtype); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
