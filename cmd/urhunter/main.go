// Command urhunter runs the full measurement pipeline over a generated
// world and prints the classification report: category summary, Table 1,
// Figure 2, and the Figure 3 analyses.
//
// Usage:
//
//	urhunter [-scale tiny|small|paper] [-seed N] [-top N] [-domains N]
//	         [-journal DIR | -resume DIR] [-checkpoint-every N]
//	         [-determine-workers N] [-chaos] [-transport udp|dot|doh]
//	         [-pprof ADDR]
//	urhunter -worker ADDR [-worker-name NAME] [-scale ...] [-seed N] [-chaos]
//
// With -journal, every answered probe is checkpointed into DIR as the sweep
// runs; a run killed by SIGINT/SIGTERM (first signal drains gracefully,
// second hard-exits) can be continued with -resume DIR, skipping every
// already-answered probe and producing a byte-identical report.
//
// With -worker, urhunter is a fleet worker instead: it generates the same
// world (same -scale/-seed/-chaos as the urcoord coordinator), connects to
// ADDR, and sweeps the shards it is assigned until the coordinator sends
// shutdown. The report comes from the coordinator's merge, not the worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/internal/fleet"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	top := flag.Int("top", 5, "providers shown in the Figure 2 breakdown")
	topDomains := flag.Int("domains", 10, "top malicious domains listed")
	jsonOut := flag.String("json", "", "write the classified records as JSON to this file")
	csvOut := flag.String("csv", "", "write the classified records as CSV to this file")
	allRecords := flag.Bool("all", false, "export every UR, not only the suspicious set")
	journalDir := flag.String("journal", "", "checkpoint the sweep into this directory (created if missing)")
	resumeDir := flag.String("resume", "", "resume a checkpointed run from this directory")
	ckptEvery := flag.Int("checkpoint-every", 0, "flush the journal every N records (0 = default)")
	detWorkers := flag.Int("determine-workers", 0, "streaming classification workers (0 = inherit sweep parallelism); any value yields byte-identical reports")
	chaos := flag.Bool("chaos", false, "inject the deterministic fault pattern (fleet runs must match the coordinator)")
	transportKind := flag.String("transport", "udp", "wire transport for sweep exchanges: udp, dot, or doh (reports are byte-identical across all three)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	workerAddr := flag.String("worker", "", "run as a fleet worker for the urcoord coordinator at this address")
	workerName := flag.String("worker-name", "", "worker identity in coordinator logs (default host:pid)")
	workerDieAt := flag.Int64("worker-die-at-records", 0, "kill this worker once its shard journal holds N records (fleet fault-injection hook)")
	flag.Parse()

	if *journalDir != "" && *resumeDir != "" {
		fmt.Fprintln(os.Stderr, "urhunter: -journal and -resume are mutually exclusive (both name the same directory)")
		os.Exit(2)
	}
	if err := repro.ValidateTransport(*transportKind); err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: -transport: %v\n", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "urhunter: pprof: %v\n", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "urhunter: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("generating %s world (seed %d)...\n", scale.Name, *seed)
	world, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: generate: %v\n", err)
		os.Exit(1)
	}
	if *chaos {
		n := repro.ApplyDeterministicChaos(world)
		fmt.Printf("chaos: %d nameservers faulted (servfail, blackhole, wrong-id)\n", n)
	}
	fmt.Printf("world ready in %v: %d nameservers, %d targets, %d open resolvers, %d malware samples\n",
		time.Since(start).Round(time.Millisecond), len(world.Nameservers),
		len(world.Targets), len(world.Resolvers.Resolvers), len(world.Samples))

	if *workerAddr != "" {
		os.Exit(runWorker(world, *workerAddr, *workerName, *transportKind, *workerDieAt, *ckptEvery))
	}

	// First SIGINT/SIGTERM cancels the sweep context: in-flight probes
	// finish, the journal flushes, and the partial coverage books print.
	// A second signal hard-exits.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "urhunter: signal received, draining sweep (signal again to hard-exit)")
		cancel()
		<-sig
		fmt.Fprintln(os.Stderr, "urhunter: second signal, exiting now")
		os.Exit(130)
	}()

	start = time.Now()
	var pipe *repro.Pipeline
	var journal *repro.Journal
	if dir := *journalDir + *resumeDir; dir != "" {
		if *resumeDir != "" {
			if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
				fmt.Fprintf(os.Stderr, "urhunter: -resume %s: no journal manifest there: %v\n", dir, err)
				os.Exit(2)
			}
		}
		pipe, journal, err = repro.NewJournaledPipelineTransport(world, *transportKind, dir, repro.JournalOptions{CheckpointEvery: *ckptEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: journal: %v\n", err)
			os.Exit(1)
		}
		defer journal.Close()
		if journal.Resumed() {
			fmt.Printf("resuming from %s: %d answered probes replayed, %d failures refiled",
				dir, journal.ReplayedAnswered(), journal.ReplayedFailures())
			if torn := journal.TornSegments(); torn > 0 {
				fmt.Printf(" (%d torn segment tails discarded)", torn)
			}
			fmt.Println()
		} else {
			fmt.Printf("checkpointing sweep into %s\n", dir)
		}
	} else {
		pipe, err = repro.NewPipelineTransport(world, *transportKind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: %v\n", err)
			os.Exit(2)
		}
	}
	// DetermineWorkers is read at Run time only, so setting it after pipeline
	// construction is safe (unlike Parallelism, which sizes the watchdog).
	pipe.Cfg.DetermineWorkers = *detWorkers
	res, err := pipe.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: pipeline: %v\n", err)
		if res != nil && res.Coverage != nil {
			cov := res.Coverage
			fmt.Fprintf(os.Stderr, "urhunter: partial coverage before interruption: %d/%d probes answered (%.1f%%), %d queries issued\n",
				cov.Answered, cov.Attempted, 100*cov.AnsweredRatio(), res.Queries)
		}
		if journal != nil {
			journal.Close()
			fmt.Fprintf(os.Stderr, "urhunter: journal holds %d new records; continue with -resume\n", journal.Appended())
		}
		os.Exit(1)
	}
	fmt.Printf("pipeline finished in %v (virtual network RTT %v)\n",
		time.Since(start).Round(time.Millisecond), world.Fabric.VirtualRTT().Round(time.Second))
	fmt.Printf("a real-world run of this query plan at the ethics appendix's pacing would take %v\n\n",
		pipe.Collector().PoliteScanEstimate().Round(time.Hour))

	fmt.Print(repro.RenderCategorySummary(res))
	fmt.Println()
	fmt.Print(repro.RenderTable1(res))
	fmt.Println()
	fmt.Print(repro.RenderFigure2(res, *top))
	fmt.Println()
	fmt.Print(repro.RenderFigure3(res))
	fmt.Println()
	fmt.Println("Top malicious domains:")
	for _, l := range repro.TopMaliciousDomains(res, *topDomains) {
		fmt.Println("  " + l)
	}

	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w *os.File) error {
			return repro.WriteJSON(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: json export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote JSON export to %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, func(w *os.File) error {
			return repro.WriteCSV(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CSV export to %s\n", *csvOut)
	}
}

// runWorker runs the fleet-worker mode: sweep shards for the coordinator at
// addr until it sends shutdown. Returns the process exit code.
func runWorker(world *repro.World, addr, name, transportKind string, dieAt int64, ckptEvery int) int {
	log.SetFlags(log.Ltime)
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "urhunter: signal received, leaving fleet")
		cancel()
		<-sig
		os.Exit(130)
	}()

	// The shard journals this worker writes carry the transport in their
	// manifests; a coordinator merging over a different transport refuses.
	cfg := world.URHunterConfig()
	cfg.TransportKind = transportKind
	err := fleet.RunWorker(ctx, addr, cfg, fleet.WorkerOptions{
		Name:            name,
		CheckpointEvery: ckptEvery,
		DieAtRecords:    dieAt,
		// Real process death: records past the last journal checkpoint are
		// lost and the coordinator must re-issue the shard.
		Die:  func() { os.Exit(7) },
		Logf: log.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: worker: %v\n", err)
		return 1
	}
	return 0
}

// writeFile creates path and runs the writer against it.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
