// Command urhunter runs the full measurement pipeline over a generated
// world and prints the classification report: category summary, Table 1,
// Figure 2, and the Figure 3 analyses.
//
// Usage:
//
//	urhunter [-scale tiny|small|paper] [-seed N] [-top N] [-domains N]
//	         [-journal DIR | -resume DIR] [-checkpoint-every N]
//	         [-determine-workers N]
//
// With -journal, every answered probe is checkpointed into DIR as the sweep
// runs; a run killed by SIGINT/SIGTERM (first signal drains gracefully,
// second hard-exits) can be continued with -resume DIR, skipping every
// already-answered probe and producing a byte-identical report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	top := flag.Int("top", 5, "providers shown in the Figure 2 breakdown")
	topDomains := flag.Int("domains", 10, "top malicious domains listed")
	jsonOut := flag.String("json", "", "write the classified records as JSON to this file")
	csvOut := flag.String("csv", "", "write the classified records as CSV to this file")
	allRecords := flag.Bool("all", false, "export every UR, not only the suspicious set")
	journalDir := flag.String("journal", "", "checkpoint the sweep into this directory (created if missing)")
	resumeDir := flag.String("resume", "", "resume a checkpointed run from this directory")
	ckptEvery := flag.Int("checkpoint-every", 0, "flush the journal every N records (0 = default)")
	detWorkers := flag.Int("determine-workers", 0, "streaming classification workers (0 = inherit sweep parallelism); any value yields byte-identical reports")
	flag.Parse()

	if *journalDir != "" && *resumeDir != "" {
		fmt.Fprintln(os.Stderr, "urhunter: -journal and -resume are mutually exclusive (both name the same directory)")
		os.Exit(2)
	}

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "urhunter: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("generating %s world (seed %d)...\n", scale.Name, *seed)
	world, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: generate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("world ready in %v: %d nameservers, %d targets, %d open resolvers, %d malware samples\n",
		time.Since(start).Round(time.Millisecond), len(world.Nameservers),
		len(world.Targets), len(world.Resolvers.Resolvers), len(world.Samples))

	// First SIGINT/SIGTERM cancels the sweep context: in-flight probes
	// finish, the journal flushes, and the partial coverage books print.
	// A second signal hard-exits.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "urhunter: signal received, draining sweep (signal again to hard-exit)")
		cancel()
		<-sig
		fmt.Fprintln(os.Stderr, "urhunter: second signal, exiting now")
		os.Exit(130)
	}()

	start = time.Now()
	var pipe *repro.Pipeline
	var journal *repro.Journal
	if dir := *journalDir + *resumeDir; dir != "" {
		if *resumeDir != "" {
			if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
				fmt.Fprintf(os.Stderr, "urhunter: -resume %s: no journal manifest there: %v\n", dir, err)
				os.Exit(2)
			}
		}
		pipe, journal, err = repro.NewJournaledPipeline(world, dir, repro.JournalOptions{CheckpointEvery: *ckptEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: journal: %v\n", err)
			os.Exit(1)
		}
		defer journal.Close()
		if journal.Resumed() {
			fmt.Printf("resuming from %s: %d answered probes replayed, %d failures refiled",
				dir, journal.ReplayedAnswered(), journal.ReplayedFailures())
			if torn := journal.TornSegments(); torn > 0 {
				fmt.Printf(" (%d torn segment tails discarded)", torn)
			}
			fmt.Println()
		} else {
			fmt.Printf("checkpointing sweep into %s\n", dir)
		}
	} else {
		pipe = repro.NewPipeline(world)
	}
	// DetermineWorkers is read at Run time only, so setting it after pipeline
	// construction is safe (unlike Parallelism, which sizes the watchdog).
	pipe.Cfg.DetermineWorkers = *detWorkers
	res, err := pipe.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: pipeline: %v\n", err)
		if res != nil && res.Coverage != nil {
			cov := res.Coverage
			fmt.Fprintf(os.Stderr, "urhunter: partial coverage before interruption: %d/%d probes answered (%.1f%%), %d queries issued\n",
				cov.Answered, cov.Attempted, 100*cov.AnsweredRatio(), res.Queries)
		}
		if journal != nil {
			journal.Close()
			fmt.Fprintf(os.Stderr, "urhunter: journal holds %d new records; continue with -resume\n", journal.Appended())
		}
		os.Exit(1)
	}
	fmt.Printf("pipeline finished in %v (virtual network RTT %v)\n",
		time.Since(start).Round(time.Millisecond), world.Fabric.VirtualRTT().Round(time.Second))
	fmt.Printf("a real-world run of this query plan at the ethics appendix's pacing would take %v\n\n",
		pipe.Collector().PoliteScanEstimate().Round(time.Hour))

	fmt.Print(repro.RenderCategorySummary(res))
	fmt.Println()
	fmt.Print(repro.RenderTable1(res))
	fmt.Println()
	fmt.Print(repro.RenderFigure2(res, *top))
	fmt.Println()
	fmt.Print(repro.RenderFigure3(res))
	fmt.Println()
	fmt.Println("Top malicious domains:")
	for _, l := range repro.TopMaliciousDomains(res, *topDomains) {
		fmt.Println("  " + l)
	}

	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w *os.File) error {
			return repro.WriteJSON(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: json export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote JSON export to %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, func(w *os.File) error {
			return repro.WriteCSV(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CSV export to %s\n", *csvOut)
	}
}

// writeFile creates path and runs the writer against it.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
