// Command urhunter runs the full measurement pipeline over a generated
// world and prints the classification report: category summary, Table 1,
// Figure 2, and the Figure 3 analyses.
//
// Usage:
//
//	urhunter [-scale tiny|small|paper] [-seed N] [-top N] [-domains N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	top := flag.Int("top", 5, "providers shown in the Figure 2 breakdown")
	topDomains := flag.Int("domains", 10, "top malicious domains listed")
	jsonOut := flag.String("json", "", "write the classified records as JSON to this file")
	csvOut := flag.String("csv", "", "write the classified records as CSV to this file")
	allRecords := flag.Bool("all", false, "export every UR, not only the suspicious set")
	flag.Parse()

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "urhunter: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("generating %s world (seed %d)...\n", scale.Name, *seed)
	world, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: generate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("world ready in %v: %d nameservers, %d targets, %d open resolvers, %d malware samples\n",
		time.Since(start).Round(time.Millisecond), len(world.Nameservers),
		len(world.Targets), len(world.Resolvers.Resolvers), len(world.Samples))

	start = time.Now()
	pipe := repro.NewPipeline(world)
	res, err := pipe.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "urhunter: pipeline: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pipeline finished in %v (virtual network RTT %v)\n",
		time.Since(start).Round(time.Millisecond), world.Fabric.VirtualRTT().Round(time.Second))
	fmt.Printf("a real-world run of this query plan at the ethics appendix's pacing would take %v\n\n",
		pipe.Collector().PoliteScanEstimate().Round(time.Hour))

	fmt.Print(repro.RenderCategorySummary(res))
	fmt.Println()
	fmt.Print(repro.RenderTable1(res))
	fmt.Println()
	fmt.Print(repro.RenderFigure2(res, *top))
	fmt.Println()
	fmt.Print(repro.RenderFigure3(res))
	fmt.Println()
	fmt.Println("Top malicious domains:")
	for _, l := range repro.TopMaliciousDomains(res, *topDomains) {
		fmt.Println("  " + l)
	}

	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w *os.File) error {
			return repro.WriteJSON(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: json export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote JSON export to %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, func(w *os.File) error {
			return repro.WriteCSV(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urhunter: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CSV export to %s\n", *csvOut)
	}
}

// writeFile creates path and runs the writer against it.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
