// Command urwatchd is the continuous UR monitoring daemon: it re-sweeps a
// generated world on an interval, publishes each sweep as a verdict-store
// generation, and serves the verdicts two ways —
//
//   - an HTTP/JSON API (lookup by domain/IP/provider, event tail, coverage
//     and health) on -http, and
//   - a DNSBL-style DNS zone on -dns, queryable with stock tools:
//
//     dig @127.0.0.1 -p 5354 ibm.com.urwatch.feed.urwatch.test TXT
//     dig @127.0.0.1 -p 5354 gen.feed.urwatch.test TXT
//
// Between generations the differ appends ur_appeared / ur_removed /
// class_changed events to the event log, served at /v1/events.
//
// Usage:
//
//	urwatchd [-scale tiny] [-seed 42] [-interval 30s] [-sweeps 0]
//	         [-http 127.0.0.1:8053] [-dns 127.0.0.1:5354]
//	         [-apex feed.urwatch.test] [-rate 0] [-burst 0] [-cache 8192]
//	         [-journal dir] [-snapshot-dir dir] [-smoke 0]
//
// With -journal, each sweep checkpoints into dir and the next sweep replays
// answered probes instead of re-querying them — incremental sweeps. With
// -snapshot-dir, every published generation is written as a binary snapshot
// and a restarted daemon serves the newest valid one immediately — cold
// start in milliseconds instead of a full blocking sweep — while the first
// background sweep refreshes it; corrupt or torn snapshots are rejected at
// load and the daemon falls back to the blocking initial sweep. With
// -smoke N, the daemon self-tests: N concurrent HTTP and N DNS clients
// hammer both front-ends across the configured number of sweeps, assert no
// 5xx / REFUSED / torn generation, then the daemon drains and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/urwatch"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	interval := flag.Duration("interval", 30*time.Second, "pause between sweeps")
	sweeps := flag.Int("sweeps", 0, "stop after N successful sweeps (0 = run forever)")
	httpAddr := flag.String("http", "127.0.0.1:8053", "HTTP/JSON API listen address (empty disables)")
	dnsAddr := flag.String("dns", "127.0.0.1:5354", "DNSBL zone listen address (empty disables)")
	apex := flag.String("apex", "feed.urwatch.test", "DNSBL zone apex")
	rate := flag.Float64("rate", 0, "per-client queries/sec (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client burst (0 = 2x rate)")
	cacheCap := flag.Int("cache", urwatch.DefaultCacheCap, "response cache entries per front-end")
	journalDir := flag.String("journal", "", "checkpoint sweeps into this directory (incremental sweeps)")
	snapshotDir := flag.String("snapshot-dir", "", "persist generation snapshots here and cold-start from the newest on restart")
	smoke := flag.Int("smoke", 0, "self-test with N concurrent HTTP and N DNS clients, then exit")
	flag.Parse()

	if err := run(*scaleName, *seed, *interval, *sweeps, *httpAddr, *dnsAddr,
		*apex, *rate, *burst, *cacheCap, *journalDir, *snapshotDir, *smoke); err != nil {
		fmt.Fprintf(os.Stderr, "urwatchd: %v\n", err)
		os.Exit(1)
	}
}

func run(scaleName string, seed int64, interval time.Duration, sweeps int,
	httpAddr, dnsAddr, apexStr string, rate, burst float64, cacheCap int,
	journalDir, snapshotDir string, smoke int) error {

	scale, ok := repro.ScaleByName(scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	apex, err := dns.ParseName(apexStr)
	if err != nil {
		return fmt.Errorf("bad apex: %w", err)
	}
	fmt.Printf("generating %s world (seed %d)...\n", scaleName, seed)
	world, err := repro.GenerateWorld(scale, seed)
	if err != nil {
		return err
	}

	sweep := func(ctx context.Context) (*core.Result, error) {
		if journalDir == "" {
			return repro.NewPipeline(world).Run(ctx)
		}
		pipe, j, err := repro.NewJournaledPipeline(world, journalDir, repro.JournalOptions{})
		if err != nil {
			return nil, err
		}
		defer j.Close()
		return pipe.Run(ctx)
	}

	watcher := urwatch.NewWatcher(urwatch.WatcherConfig{
		Sweep:    sweep,
		Interval: interval,
		OnGeneration: func(g *urwatch.Generation, d *urwatch.GenDiff) {
			fmt.Printf("generation %d: %d verdicts, %d events (gen %d -> %d)\n",
				g.Seq, g.Total(), len(d.Events), d.FromSeq, d.ToSeq)
			if snapshotDir != "" {
				if _, err := urwatch.SaveGeneration(snapshotDir, g); err != nil {
					fmt.Fprintf(os.Stderr, "urwatchd: snapshot generation %d: %v\n", g.Seq, err)
				}
			}
		},
	})

	// Cold start: restore the newest valid snapshot and serve it immediately
	// — the first background sweep refreshes it. Without a restorable
	// snapshot, the first sweep runs before the listeners open, so the
	// front-ends never serve the empty generation 0 to a real client.
	restored := false
	if snapshotDir != "" {
		t0 := time.Now()
		g, path, err := urwatch.LoadLatestSnapshot(snapshotDir)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "urwatchd: snapshot restore: %v; falling back to initial sweep\n", err)
		case g != nil:
			watcher.Store().Restore(g)
			restored = true
			fmt.Printf("restored generation %d (%d verdicts) from %s in %s\n",
				g.Seq, g.Total(), path, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !restored {
		fmt.Println("initial sweep...")
		if _, err := watcher.SweepOnce(context.Background()); err != nil {
			return fmt.Errorf("initial sweep: %w", err)
		}
	}

	var limiter *urwatch.RateLimiter
	if rate > 0 {
		if burst <= 0 {
			burst = 2 * rate
		}
		limiter = urwatch.NewRateLimiter(rate, burst, nil)
	}

	var group urwatch.ServeGroup
	if dnsAddr != "" {
		zr := &urwatch.ZoneResponder{
			Apex:    apex,
			Store:   watcher.Store(),
			Limiter: limiter,
			Cache:   urwatch.NewResponseCache(cacheCap),
		}
		srv, err := group.StartDNS(zr, dnsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("DNSBL zone %s on udp/tcp %s\n", apex, srv.UDPAddr())
		dnsAddr = srv.UDPAddr().String()
	}
	if httpAddr != "" {
		api := &urwatch.API{
			Store:   watcher.Store(),
			Watcher: watcher,
			Limiter: limiter,
			Cache:   urwatch.NewResponseCache(cacheCap),
		}
		addr, err := group.StartHTTP(api.Handler(), httpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("HTTP API on http://%s/v1/\n", addr)
		httpAddr = addr.String()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watcherDone := make(chan error, 1)
	go func() { watcherDone <- watcher.Run(ctx, sweeps) }()

	var smokeErr error
	if smoke > 0 {
		smokeErr = runSmoke(ctx, watcher, httpAddr, dnsAddr, apex, smoke, sweeps)
		cancel()
	} else {
		fmt.Println("serving; ctrl-c to drain and exit")
		urwatch.AwaitSignal(ctx, os.Interrupt, syscall.SIGTERM)
		cancel()
	}

	<-watcherDone
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer drainCancel()
	if err := group.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("drained cleanly")
	return smokeErr
}

// runSmoke hammers both front-ends with concurrent clients while the
// watcher publishes generations, asserting the serving invariants: no 5xx,
// no REFUSED, and every response's generation within the [before, after]
// window of its request — i.e. a reader sees generation N or N+1, never a
// torn in-between.
func runSmoke(ctx context.Context, watcher *urwatch.Watcher,
	httpAddr, dnsAddr string, apex dns.Name, clients, sweeps int) error {

	if sweeps <= 0 {
		sweeps = 3
	}
	fmt.Printf("smoke: %d HTTP + %d DNS clients across %d sweeps\n",
		clients, clients, sweeps)

	var (
		httpReqs, dnsReqs atomic.Int64
		violations        atomic.Int64
		mu                sync.Mutex
		firstViolation    string
	)
	violate := func(format string, args ...any) {
		violations.Add(1)
		mu.Lock()
		if firstViolation == "" {
			firstViolation = fmt.Sprintf(format, args...)
		}
		mu.Unlock()
	}
	genWindow := func(before uint64, got uint64) bool {
		return got >= before && got <= watcher.Store().Current().Seq
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			if watcher.Health().Sweeps >= sweeps {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	if httpAddr != "" {
		paths := []string{"/v1/providers", "/v1/health", "/v1/coverage",
			"/v1/events?since=0&max=10", "/v1/lookup?domain=ibm.com"}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cli := &http.Client{Timeout: 5 * time.Second}
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					before := watcher.Store().Current().Seq
					url := "http://" + httpAddr + paths[i%len(paths)]
					resp, err := cli.Get(url)
					if err != nil {
						violate("http client %d: %v", c, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					httpReqs.Add(1)
					if resp.StatusCode >= 500 {
						violate("http %s: status %d", url, resp.StatusCode)
						continue
					}
					var env struct {
						Generation uint64 `json:"generation"`
					}
					if json.Unmarshal(body, &env) == nil && env.Generation > 0 &&
						!genWindow(before, env.Generation) {
						violate("http %s: torn generation %d (window started at %d)",
							url, env.Generation, before)
					}
				}
			}(c)
		}
	}
	if dnsAddr != "" {
		server, err := netip.ParseAddrPort(dnsAddr)
		if err != nil {
			return fmt.Errorf("smoke: bad dns addr: %w", err)
		}
		names := []struct {
			name dns.Name
			t    dns.Type
		}{
			{"gen." + apex, dns.TypeTXT},
			{urwatch.DomainName("ibm.com", apex), dns.TypeA},
			{urwatch.DomainName("ibm.com", apex), dns.TypeTXT},
			{"unlisted.example.urwatch." + apex, dns.TypeA},
		}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cli := dnsio.NewClient(&dnsio.NetTransport{})
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					q := names[i%len(names)]
					qctx, qcancel := context.WithTimeout(context.Background(), 5*time.Second)
					resp, err := cli.Query(qctx, server, q.name, q.t)
					qcancel()
					if err != nil {
						violate("dns client %d: %v", c, err)
						return
					}
					dnsReqs.Add(1)
					if resp.Header.RCode == dns.RCodeRefused ||
						resp.Header.RCode == dns.RCodeServFail {
						violate("dns %s %s: rcode %s", q.name, q.t, resp.Header.RCode)
					}
				}
			}(c)
		}
	}

	wg.Wait()
	fmt.Printf("smoke: %d HTTP + %d DNS requests served across %d generations, %d violations\n",
		httpReqs.Load(), dnsReqs.Load(), watcher.Store().Current().Seq, violations.Load())
	if v := violations.Load(); v > 0 {
		return fmt.Errorf("smoke: %d violations; first: %s", v, firstViolation)
	}
	if httpAddr != "" && httpReqs.Load() == 0 {
		return fmt.Errorf("smoke: no HTTP requests completed")
	}
	if dnsAddr != "" && dnsReqs.Load() == 0 {
		return fmt.Errorf("smoke: no DNS requests completed")
	}
	return nil
}
