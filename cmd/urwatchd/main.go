// Command urwatchd is the continuous UR monitoring daemon: it re-sweeps a
// generated world on an interval, publishes each sweep as a verdict-store
// generation, and serves the verdicts three ways —
//
//   - an HTTP/JSON API (lookup by domain/IP/provider, event tail, coverage
//     and health) on -http, and
//   - a DNSBL-style DNS zone on -dns, queryable with stock tools:
//
//     dig @127.0.0.1 -p 5354 ibm.com.urwatch.feed.urwatch.test TXT
//     dig @127.0.0.1 -p 5354 gen.feed.urwatch.test TXT
//
//   - the same zone over RFC 8484 DoH at /dns-query on the -http listener
//     (POST application/dns-message or GET ?dns=), sharing the UDP/TCP
//     front-end's cache and metrics; per-transport counters appear on
//     /metrics as urwatch_dns_queries_total{transport="..."}.
//
// Between generations the differ appends ur_appeared / ur_removed /
// class_changed events to the event log, served at /v1/events.
//
// Usage:
//
//	urwatchd [-scale tiny] [-seed 42] [-interval 30s] [-sweeps 0]
//	         [-http 127.0.0.1:8053] [-dns 127.0.0.1:5354]
//	         [-apex feed.urwatch.test] [-rate 0] [-burst 0] [-cache 8192]
//	         [-journal dir] [-snapshot-dir dir] [-smoke 0]
//	         [-max-staleness 0] [-degraded-after 3] [-retain 8]
//	         [-xfr-allow CIDRs] [-zone-allow CIDRs] [-notify addrs]
//	         [-fail-sweeps 0]
//
// With -journal, each sweep checkpoints into dir and the next sweep replays
// answered probes instead of re-querying them — incremental sweeps. With
// -snapshot-dir, every published generation is written as a binary snapshot
// and a restarted daemon serves the newest valid one immediately — cold
// start in milliseconds instead of a full blocking sweep — while the first
// background sweep refreshes it; corrupt or torn snapshots are rejected at
// load and the daemon falls back to the blocking initial sweep. With
// -smoke N, the daemon self-tests: N concurrent HTTP and N DNS clients
// hammer both front-ends across the configured number of sweeps, assert no
// 5xx / REFUSED / torn generation, then the daemon drains and exits.
//
// Robustness and mirroring:
//
// Failed sweeps never un-publish — the last sealed generation keeps serving
// (stale-on-error) while /v1/health walks ok -> degraded (-degraded-after
// consecutive failures) -> stale (generation older than -max-staleness; 0
// selects 10x the sweep interval, negative disables the bound). Health
// transitions print as "health: <from> -> <to>" lines. -fail-sweeps N
// injects N consecutive sweep failures after the first success — the chaos
// hook the CI degradation smoke drives.
//
// -xfr-allow enables AXFR/IXFR zone transfers for the listed CIDRs (off when
// empty): a mirror AXFRs once, then follows generations with IXFR deltas
// keyed by SOA serial = generation sequence, falling back to AXFR when its
// serial predates the -retain window. -notify sends RFC 1996 NOTIFY to the
// listed addr:port secondaries on every publish. -zone-allow restricts
// ordinary DNSBL queries (open when empty). /metrics serves Prometheus text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"net/netip"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/transport"
	"repro/internal/urwatch"
)

// daemonConfig carries the parsed flag set.
type daemonConfig struct {
	scaleName     string
	seed          int64
	interval      time.Duration
	sweeps        int
	httpAddr      string
	dnsAddr       string
	apexStr       string
	rate, burst   float64
	cacheCap      int
	journalDir    string
	snapshotDir   string
	smoke         int
	maxStaleness  time.Duration
	degradedAfter int
	retain        int
	xfrAllow      string
	zoneAllow     string
	notify        string
	failSweeps    int
	pprofAddr     string
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.scaleName, "scale", "tiny", "world scale: tiny, small, or paper")
	flag.Int64Var(&cfg.seed, "seed", 42, "world generation seed")
	flag.DurationVar(&cfg.interval, "interval", 30*time.Second, "pause between sweeps")
	flag.IntVar(&cfg.sweeps, "sweeps", 0, "stop after N successful sweeps (0 = run forever)")
	flag.StringVar(&cfg.httpAddr, "http", "127.0.0.1:8053", "HTTP/JSON API listen address (empty disables)")
	flag.StringVar(&cfg.dnsAddr, "dns", "127.0.0.1:5354", "DNSBL zone listen address (empty disables)")
	flag.StringVar(&cfg.apexStr, "apex", "feed.urwatch.test", "DNSBL zone apex")
	flag.Float64Var(&cfg.rate, "rate", 0, "per-client queries/sec (0 = unlimited)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-client burst (0 = 2x rate)")
	flag.IntVar(&cfg.cacheCap, "cache", urwatch.DefaultCacheCap, "response cache entries per front-end")
	flag.StringVar(&cfg.journalDir, "journal", "", "checkpoint sweeps into this directory (incremental sweeps)")
	flag.StringVar(&cfg.snapshotDir, "snapshot-dir", "", "persist generation snapshots here and cold-start from the newest on restart")
	flag.IntVar(&cfg.smoke, "smoke", 0, "self-test with N concurrent HTTP and N DNS clients, then exit")
	flag.DurationVar(&cfg.maxStaleness, "max-staleness", 0, "generation age that flips health to stale (0 = 10x interval, <0 = unbounded)")
	flag.IntVar(&cfg.degradedAfter, "degraded-after", 3, "consecutive sweep failures that flip health to degraded")
	flag.IntVar(&cfg.retain, "retain", urwatch.DefaultRetainGenerations, "generations retained for IXFR deltas")
	flag.StringVar(&cfg.xfrAllow, "xfr-allow", "", "CIDR allowlist for AXFR/IXFR/NOTIFY (empty disables transfers)")
	flag.StringVar(&cfg.zoneAllow, "zone-allow", "", "CIDR allowlist for DNSBL queries (empty = open)")
	flag.StringVar(&cfg.notify, "notify", "", "comma-separated addr:port secondaries to NOTIFY on publish")
	flag.IntVar(&cfg.failSweeps, "fail-sweeps", 0, "inject N consecutive sweep failures after the first success (chaos hook)")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address")
	flag.Parse()

	if cfg.pprofAddr != "" {
		// The daemon's own API uses a dedicated mux, so the pprof handlers on
		// http.DefaultServeMux are only reachable through this listener.
		go func() {
			fmt.Fprintf(os.Stderr, "urwatchd: pprof: %v\n", http.ListenAndServe(cfg.pprofAddr, nil))
		}()
	}

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "urwatchd: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	interval, sweeps := cfg.interval, cfg.sweeps
	httpAddr, dnsAddr := cfg.httpAddr, cfg.dnsAddr
	snapshotDir := cfg.snapshotDir

	scale, ok := repro.ScaleByName(cfg.scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q", cfg.scaleName)
	}
	apex, err := dns.ParseName(cfg.apexStr)
	if err != nil {
		return fmt.Errorf("bad apex: %w", err)
	}
	xferACL, err := urwatch.ParseACL(cfg.xfrAllow)
	if err != nil {
		return err
	}
	zoneACL, err := urwatch.ParseACL(cfg.zoneAllow)
	if err != nil {
		return err
	}
	var notifyTargets []netip.AddrPort
	for _, part := range strings.Split(cfg.notify, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ap, err := netip.ParseAddrPort(part)
		if err != nil {
			return fmt.Errorf("bad -notify target %q: %w", part, err)
		}
		notifyTargets = append(notifyTargets, ap)
	}
	maxStaleness := cfg.maxStaleness
	if maxStaleness == 0 {
		maxStaleness = 10 * interval
	} else if maxStaleness < 0 {
		maxStaleness = 0
	}

	fmt.Printf("generating %s world (seed %d)...\n", cfg.scaleName, cfg.seed)
	world, err := repro.GenerateWorld(scale, cfg.seed)
	if err != nil {
		return err
	}

	baseSweep := func(ctx context.Context) (*core.Result, error) {
		if cfg.journalDir == "" {
			return repro.NewPipeline(world).Run(ctx)
		}
		pipe, j, err := repro.NewJournaledPipeline(world, cfg.journalDir, repro.JournalOptions{})
		if err != nil {
			return nil, err
		}
		defer j.Close()
		return pipe.Run(ctx)
	}
	sweep := baseSweep
	if cfg.failSweeps > 0 {
		// Chaos hook: after the first successful sweep, fail the next N. The
		// scheduler calls sweeps sequentially, so plain variables suffice.
		var succeeded bool
		failLeft := cfg.failSweeps
		sweep = func(ctx context.Context) (*core.Result, error) {
			if succeeded && failLeft > 0 {
				failLeft--
				return nil, fmt.Errorf("injected sweep failure (%d more to come)", failLeft)
			}
			res, err := baseSweep(ctx)
			if err == nil {
				succeeded = true
			}
			return res, err
		}
	}

	metrics := urwatch.NewMetrics()
	watcher := urwatch.NewWatcher(urwatch.WatcherConfig{
		Sweep:    sweep,
		Interval: interval,
		Staleness: &urwatch.StalenessPolicy{
			SweepInterval: interval,
			MaxStaleness:  maxStaleness,
			DegradedAfter: cfg.degradedAfter,
			Retain:        cfg.retain,
		},
		OnGeneration: func(g *urwatch.Generation, d *urwatch.GenDiff) {
			fmt.Printf("generation %d: %d verdicts, %d events (gen %d -> %d)\n",
				g.Seq, g.Total(), len(d.Events), d.FromSeq, d.ToSeq)
			if snapshotDir != "" {
				if _, err := urwatch.SaveGeneration(snapshotDir, g); err != nil {
					fmt.Fprintf(os.Stderr, "urwatchd: snapshot generation %d: %v\n", g.Seq, err)
				}
			}
			for _, target := range notifyTargets {
				go func(target netip.AddrPort, seq uint64) {
					nctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					if err := dnsio.Notify(nctx, target, apex, urwatch.SerialForSeq(seq)); err != nil {
						fmt.Fprintf(os.Stderr, "urwatchd: notify %s: %v\n", target, err)
						return
					}
					metrics.CountNotify()
					fmt.Printf("notify: generation %d -> %s\n", seq, target)
				}(target, g.Seq)
			}
		},
		OnSweepError: func(err error, consecutive int) {
			fmt.Fprintf(os.Stderr, "urwatchd: sweep failed (consecutive %d): %v\n", consecutive, err)
		},
	})

	// Cold start: restore the newest valid snapshot and serve it immediately
	// — the first background sweep refreshes it. Without a restorable
	// snapshot, the first sweep runs before the listeners open, so the
	// front-ends never serve the empty generation 0 to a real client.
	restored := false
	if snapshotDir != "" {
		t0 := time.Now()
		g, path, err := urwatch.LoadLatestSnapshot(snapshotDir)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "urwatchd: snapshot restore: %v; falling back to initial sweep\n", err)
		case g != nil:
			watcher.Store().Restore(g)
			restored = true
			fmt.Printf("restored generation %d (%d verdicts) from %s in %s\n",
				g.Seq, g.Total(), path, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !restored {
		fmt.Println("initial sweep...")
		if _, err := watcher.SweepOnce(context.Background()); err != nil {
			return fmt.Errorf("initial sweep: %w", err)
		}
	}

	var limiter *urwatch.RateLimiter
	if cfg.rate > 0 {
		burst := cfg.burst
		if burst <= 0 {
			burst = 2 * cfg.rate
		}
		limiter = urwatch.NewRateLimiter(cfg.rate, burst, nil)
	}

	var group urwatch.ServeGroup
	dnsTCPAddr := ""
	var zr *urwatch.ZoneResponder
	if dnsAddr != "" || httpAddr != "" {
		// One responder backs every DNS-shaped front-end (UDP, TCP, DoH), so
		// they share the response cache and count into the same metrics.
		zr = &urwatch.ZoneResponder{
			Apex:    apex,
			Store:   watcher.Store(),
			Limiter: limiter,
			Cache:   urwatch.NewResponseCache(cfg.cacheCap),
			XferACL: xferACL,
			ZoneACL: zoneACL,
			Metrics: metrics,
		}
	}
	if dnsAddr != "" {
		srv, err := group.StartDNS(zr, dnsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("DNSBL zone %s on udp %s / tcp %s\n", apex, srv.UDPAddr(), srv.TCPAddr())
		if xferACL != nil {
			fmt.Printf("zone transfers enabled for %s\n", xferACL)
		}
		dnsAddr = srv.UDPAddr().String()
		dnsTCPAddr = srv.TCPAddr().String()
	}
	if httpAddr != "" {
		api := &urwatch.API{
			Store:   watcher.Store(),
			Watcher: watcher,
			Limiter: limiter,
			Cache:   urwatch.NewResponseCache(cfg.cacheCap),
			Metrics: metrics,
		}
		mux := http.NewServeMux()
		mux.Handle("/", api.Handler())
		// RFC 8484 front-end: the same zone the UDP/TCP listeners serve,
		// reachable as POST/GET /dns-query on the API listener.
		mux.Handle(transport.DoHPath, &transport.DoHHandler{
			Responder: zr,
			OnError:   func() { metrics.CountTransportError(urwatch.TransportDoH) },
		})
		addr, err := group.StartHTTP(mux, httpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("HTTP API on http://%s/v1/\n", addr)
		fmt.Printf("DoH endpoint on http://%s%s\n", addr, transport.DoHPath)
		httpAddr = addr.String()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Health transition logger: the staleness machine's state changes both on
	// events (failed sweeps, publishes) and silently with the clock (age
	// crossing -max-staleness), so poll rather than hook. The "health: A -> B"
	// lines are the CI degradation smoke's observable.
	h0 := watcher.Health()
	fmt.Printf("health: %s (generation %d, age %.1fs)\n", h0.Status, h0.Generation, h0.GenerationAgeSec)
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		prev := h0.Status
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			if cur := watcher.Health().Status; cur != prev {
				fmt.Printf("health: %s -> %s\n", prev, cur)
				prev = cur
			}
		}
	}()

	watcherDone := make(chan error, 1)
	go func() { watcherDone <- watcher.Run(ctx, sweeps) }()

	var smokeErr error
	if cfg.smoke > 0 {
		smokeErr = runSmoke(ctx, watcher, httpAddr, dnsAddr, dnsTCPAddr, apex,
			xferACL.Contains(netip.MustParseAddr("127.0.0.1")), cfg.smoke, sweeps)
		cancel()
	} else {
		fmt.Println("serving; ctrl-c to drain and exit")
		urwatch.AwaitSignal(ctx, os.Interrupt, syscall.SIGTERM)
		cancel()
	}

	<-watcherDone
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer drainCancel()
	if err := group.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("drained cleanly")
	return smokeErr
}

// runSmoke hammers both front-ends with concurrent clients while the
// watcher publishes generations, asserting the serving invariants: no 5xx,
// no REFUSED, and every response's generation within the [before, after]
// window of its request — i.e. a reader sees generation N or N+1, never a
// torn in-between. After the load phase it exercises the zone-transfer path
// over TCP: when 127.0.0.1 is transfer-allowlisted it AXFRs the zone into a
// mirror and verifies an immediate IXFR reports up-to-date; otherwise it
// asserts the transfer is REFUSED.
func runSmoke(ctx context.Context, watcher *urwatch.Watcher,
	httpAddr, dnsAddr, dnsTCPAddr string, apex dns.Name, xfrAllowed bool,
	clients, sweeps int) error {

	if sweeps <= 0 {
		sweeps = 3
	}
	fmt.Printf("smoke: %d HTTP + %d DNS clients across %d sweeps\n",
		clients, clients, sweeps)

	var (
		httpReqs, dnsReqs atomic.Int64
		violations        atomic.Int64
		mu                sync.Mutex
		firstViolation    string
	)
	violate := func(format string, args ...any) {
		violations.Add(1)
		mu.Lock()
		if firstViolation == "" {
			firstViolation = fmt.Sprintf(format, args...)
		}
		mu.Unlock()
	}
	genWindow := func(before uint64, got uint64) bool {
		return got >= before && got <= watcher.Store().Current().Seq
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			if watcher.Health().Sweeps >= sweeps {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	if httpAddr != "" {
		paths := []string{"/v1/providers", "/v1/health", "/v1/coverage",
			"/v1/events?since=0&max=10", "/v1/lookup?domain=ibm.com"}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cli := &http.Client{Timeout: 5 * time.Second}
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					before := watcher.Store().Current().Seq
					url := "http://" + httpAddr + paths[i%len(paths)]
					resp, err := cli.Get(url)
					if err != nil {
						violate("http client %d: %v", c, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					httpReqs.Add(1)
					if resp.StatusCode >= 500 {
						violate("http %s: status %d", url, resp.StatusCode)
						continue
					}
					var env struct {
						Generation uint64 `json:"generation"`
					}
					if json.Unmarshal(body, &env) == nil && env.Generation > 0 &&
						!genWindow(before, env.Generation) {
						violate("http %s: torn generation %d (window started at %d)",
							url, env.Generation, before)
					}
				}
			}(c)
		}
	}
	if dnsAddr != "" {
		server, err := netip.ParseAddrPort(dnsAddr)
		if err != nil {
			return fmt.Errorf("smoke: bad dns addr: %w", err)
		}
		names := []struct {
			name dns.Name
			t    dns.Type
		}{
			{"gen." + apex, dns.TypeTXT},
			{urwatch.DomainName("ibm.com", apex), dns.TypeA},
			{urwatch.DomainName("ibm.com", apex), dns.TypeTXT},
			{"unlisted.example.urwatch." + apex, dns.TypeA},
		}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cli := dnsio.NewClient(&dnsio.NetTransport{})
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					q := names[i%len(names)]
					qctx, qcancel := context.WithTimeout(context.Background(), 5*time.Second)
					resp, err := cli.Query(qctx, server, q.name, q.t)
					qcancel()
					if err != nil {
						violate("dns client %d: %v", c, err)
						return
					}
					dnsReqs.Add(1)
					if resp.Header.RCode == dns.RCodeRefused ||
						resp.Header.RCode == dns.RCodeServFail {
						violate("dns %s %s: rcode %s", q.name, q.t, resp.Header.RCode)
					}
				}
			}(c)
		}
	}

	wg.Wait()

	if dnsTCPAddr != "" {
		if err := smokeXfr(watcher, dnsTCPAddr, apex, xfrAllowed, violate); err != nil {
			violate("xfr: %v", err)
		}
	}
	if httpAddr != "" {
		if err := smokeDoH(httpAddr, apex, violate); err != nil {
			violate("doh: %v", err)
		}
	}

	fmt.Printf("smoke: %d HTTP + %d DNS requests served across %d generations, %d violations\n",
		httpReqs.Load(), dnsReqs.Load(), watcher.Store().Current().Seq, violations.Load())
	if v := violations.Load(); v > 0 {
		return fmt.Errorf("smoke: %d violations; first: %s", v, firstViolation)
	}
	if httpAddr != "" && httpReqs.Load() == 0 {
		return fmt.Errorf("smoke: no HTTP requests completed")
	}
	if dnsAddr != "" && dnsReqs.Load() == 0 {
		return fmt.Errorf("smoke: no DNS requests completed")
	}
	return nil
}

// smokeDoH exercises the RFC 8484 front-end: the same planted names the UDP
// clients hammered, re-resolved as application/dns-message POSTs against
// /dns-query on the API listener. The answers must match what the datagram
// path serves — one responder backs both — so any divergence is a violation.
func smokeDoH(httpAddr string, apex dns.Name, violate func(string, ...any)) error {
	server, err := netip.ParseAddrPort(httpAddr)
	if err != nil {
		return fmt.Errorf("bad http addr: %w", err)
	}
	cli := dnsio.NewClient(&transport.NetDoH{})
	queries := []struct {
		name dns.Name
		t    dns.Type
	}{
		{"gen." + apex, dns.TypeTXT},
		{urwatch.DomainName("ibm.com", apex), dns.TypeA},
	}
	for _, q := range queries {
		qctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := cli.Query(qctx, server, q.name, q.t)
		cancel()
		if err != nil {
			return fmt.Errorf("%s %s: %w", q.name, q.t, err)
		}
		if resp.Header.RCode != dns.RCodeSuccess || len(resp.Answers) == 0 {
			violate("doh %s %s: rcode %s, %d answers",
				q.name, q.t, resp.Header.RCode, len(resp.Answers))
			continue
		}
		fmt.Printf("smoke: DoH %s %s -> %d answers\n", q.name, q.t, len(resp.Answers))
	}
	// The queries above ran via="doh", so the per-transport counter family on
	// /metrics must have moved; scrape it and print the line for the CI grep.
	mctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(mctx, http.MethodGet, "http://"+httpAddr+"/metrics", nil)
	if err != nil {
		return err
	}
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	body, err := io.ReadAll(io.LimitReader(mresp.Body, 1<<20))
	mresp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	var counted bool
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, `urwatch_dns_queries_total{transport="doh"}`) {
			fmt.Printf("smoke: DoH metric %s\n", line)
			if f := strings.Fields(line); len(f) == 2 && f[1] != "0" {
				counted = true
			}
		}
	}
	if !counted {
		violate("doh queries served but urwatch_dns_queries_total{transport=\"doh\"} never moved")
	}
	fmt.Println("smoke: DoH front-end ok")
	return nil
}

// smokeXfr runs the transfer phase of the smoke: a full AXFR into a mirror
// plus an up-to-date IXFR when allowed, a REFUSED assertion when not.
func smokeXfr(watcher *urwatch.Watcher, dnsTCPAddr string, apex dns.Name,
	allowed bool, violate func(string, ...any)) error {

	server, err := netip.ParseAddrPort(dnsTCPAddr)
	if err != nil {
		return fmt.Errorf("bad dns tcp addr: %w", err)
	}
	xctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := dnsio.Transfer(xctx, server, apex, dns.TypeAXFR, 0)
	if err != nil {
		return fmt.Errorf("AXFR: %w", err)
	}
	if !allowed {
		if res.RCode != dns.RCodeRefused {
			violate("AXFR from non-allowlisted client got rcode %s, want REFUSED", res.RCode)
			return nil
		}
		fmt.Println("smoke: AXFR refused (as expected)")
		return nil
	}
	if res.RCode != dns.RCodeSuccess {
		violate("AXFR rcode %s", res.RCode)
		return nil
	}
	m := urwatch.NewMirror()
	if err := m.Apply(res); err != nil {
		return fmt.Errorf("apply AXFR: %w", err)
	}
	cur := urwatch.SerialForSeq(watcher.Store().Current().Seq)
	if m.Serial() != cur {
		violate("AXFR mirrored serial %d, primary at %d", m.Serial(), cur)
	}
	fmt.Printf("smoke: AXFR mirrored serial=%d records=%d messages=%d\n",
		m.Serial(), len(res.Records), res.Messages)
	ires, err := dnsio.Transfer(xctx, server, apex, dns.TypeIXFR, m.Serial())
	if err != nil {
		return fmt.Errorf("IXFR: %w", err)
	}
	if err := m.Apply(ires); err != nil {
		return fmt.Errorf("apply IXFR: %w", err)
	}
	fmt.Printf("smoke: IXFR from serial=%d ok (%d records)\n", m.Serial(), len(ires.Records))
	return nil
}
