// Command benchjson runs the headline URHunter benchmarks programmatically
// and emits a machine-readable JSON summary (BENCH_pipeline.json) for CI
// trend tracking and the DESIGN.md performance table.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_pipeline.json] [-seed 7]
//
// The tool mirrors the `go test -bench` harness benchmarks at the tiny
// scale, so a run completes in seconds. Custom metrics reported via
// b.ReportMetric (queries/sec, urs) appear under "extra".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dns"
	"repro/internal/dnsio"
	"repro/internal/fleet"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/urwatch"
)

// delayTransport adds real-time latency to the instant simulated fabric,
// turning the sweep into the network-bound workload a distributed sweep
// actually amortizes. The delay is paid as one accurate d-length sleep every
// `every` exchanges rather than d/every per exchange — sub-millisecond
// sleeps oversleep by an order of magnitude on Linux, which would silently
// multiply the simulated latency. Used by ShardedSweep.
type delayTransport struct {
	inner dnsio.Transport
	d     time.Duration
	every int64
	n     atomic.Int64
}

func (t *delayTransport) Exchange(ctx context.Context, server netip.AddrPort, packed []byte, tcp bool) ([]byte, error) {
	if t.n.Add(1)%t.every == 0 {
		time.Sleep(t.d)
	}
	return t.inner.Exchange(ctx, server, packed, tcp)
}

// benchResult is one benchmark's summary in the output file.
type benchResult struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Scale      string                 `json:"scale"`
	Seed       int64                  `json:"seed"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output file ('-' for stdout)")
	seed := flag.Int64("seed", 7, "world generation seed")
	gatePct := flag.Float64("max-journal-overhead-pct", 0,
		"exit 1 if JournaledPipeline's journal_overhead_% exceeds this (0 disables the gate)")
	minServeQPS := flag.Float64("min-serve-qps", 0,
		"exit 1 if ServeVerdicts' serve_qps falls below this (0 disables the gate)")
	maxServeP99 := flag.Float64("max-serve-p99-ms", 0,
		"exit 1 if ServeVerdicts' serve_p99_ms exceeds this (0 disables the gate)")
	maxBytesPerVerdict := flag.Float64("max-bytes-per-verdict", 0,
		"exit 1 if FlatStoreFootprint's bytes_per_verdict exceeds this (0 disables the gate)")
	maxColdstart := flag.Float64("max-coldstart-ms", 0,
		"exit 1 if SnapshotColdStart's coldstart_ms exceeds this (0 disables the gate)")
	minShardedSpeedup := flag.Float64("min-sharded-speedup-2w", 0,
		"exit 1 if ShardedSweep's speedup_vs_1worker_2w_x falls below this (0 disables the gate)")
	maxMergeOverhead := flag.Float64("max-merge-overhead-pct", 0,
		"exit 1 if ShardedSweep's merge_overhead_% exceeds this (0 disables the gate)")
	maxDoHOverhead := flag.Float64("max-doh-overhead-pct", 0,
		"exit 1 if TransportSweep's doh_overhead_% exceeds this (0 disables the gate)")
	flag.Parse()

	env, err := repro.NewEnv(context.Background(), repro.TinyScale(), *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: env: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      "tiny",
		Seed:       *seed,
		Benchmarks: map[string]benchResult{},
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks[name] = benchResult{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       r.Extra,
		}
		fmt.Fprintf(os.Stderr, "%-28s %10d iters  %12.0f ns/op\n",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}

	run("Table1Pipeline", func(b *testing.B) {
		var queries int64
		var cov *core.Coverage
		var stages *core.StageTimings
		for i := 0; i < b.N; i++ {
			res, err := repro.NewPipeline(env.World).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			queries = res.Queries
			cov = res.Coverage
			stages = res.Stages
		}
		b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		b.ReportMetric(100*cov.AnsweredRatio(), "answered_%")
		b.ReportMetric(stages.OverlapPercent(), "pipeline_overlap_%")
	})
	// PipelineOverlap measures what the streaming dataflow buys end to end:
	// each iteration runs the pipeline fully serial (one sweep worker, one
	// determine worker) and then at the GOMAXPROCS defaults, back to back,
	// and speedup_vs_serial_x is the MEDIAN of the per-pair wall-clock
	// ratios (same estimator rationale as JournaledPipeline). On a 1-core
	// host the ratio hovers near 1.0 by construction — the overlap win needs
	// GOMAXPROCS>1 to materialize, which is where the CI runners record it.
	run("PipelineOverlap", func(b *testing.B) {
		var ratios []float64
		var overlap float64
		var serialNs, overlappedNs int64
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			cfg := env.World.URHunterConfig()
			cfg.Parallelism, cfg.DetermineWorkers = 1, 1
			if _, err := core.NewPipeline(cfg).Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			t1 := time.Now()
			res, err := repro.NewPipeline(env.World).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			t2 := time.Now()
			serial, overlapped := t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds()
			serialNs += serial
			overlappedNs += overlapped
			if overlapped > 0 {
				ratios = append(ratios, float64(serial)/float64(overlapped))
			}
			overlap = res.Stages.OverlapPercent()
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			mid := len(ratios) / 2
			med := ratios[mid]
			if len(ratios)%2 == 0 {
				med = (ratios[mid-1] + ratios[mid]) / 2
			}
			b.ReportMetric(med, "speedup_vs_serial_x")
		}
		b.ReportMetric(float64(serialNs)/float64(b.N), "serial_ns_per_op")
		b.ReportMetric(float64(overlappedNs)/float64(b.N), "overlapped_ns_per_op")
		b.ReportMetric(overlap, "pipeline_overlap_%")
	})
	// ChaosPipelineCoverage runs the same pipeline under the acceptance-gate
	// fault mix (30% loss, 5% wrong-ID spoofing everywhere, two flapping
	// nameservers) and reports how much of the probe plan still completed —
	// the robustness counterpart to the clean-run throughput numbers.
	run("ChaosPipelineCoverage", func(b *testing.B) {
		w := env.World
		w.Fabric.SetLossRate(0.30)
		for i, ns := range w.Nameservers {
			p := simnet.FaultProfile{WrongIDRate: 0.05}
			if i < 2 {
				p.FlapPeriod, p.FlapDown = 16, 3
			}
			dnsio.SetSimFault(w.Fabric, ns.Addr, p)
		}
		defer func() {
			w.Fabric.SetLossRate(0)
			w.Fabric.ClearFaults()
		}()
		var cov *core.Coverage
		for i := 0; i < b.N; i++ {
			res, err := repro.NewPipeline(w).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			cov = res.Coverage
		}
		b.ReportMetric(100*cov.AnsweredRatio(), "answered_%")
		b.ReportMetric(float64(cov.RetriedRecovered), "recovered")
		b.ReportMetric(float64(cov.BreakerTrips), "breaker_trips")
	})
	// JournaledPipeline is the clean-run pipeline with checkpointing on: a
	// fresh journal directory per iteration, so every answered probe is
	// framed, CRC'd, buffered, and written out at checkpoint boundaries.
	// Each iteration runs several (plain, journaled) pairs back-to-back and
	// journal_overhead_% is the MEDIAN of the per-pair overhead ratios.
	// Noise on a shared machine — scheduler stalls, GC cycles, CPU steal —
	// only ever adds time and lands in bursts, so a separately measured
	// baseline would fold machine drift into the number, a mean lets one
	// burst swamp the single-digit cost the acceptance gate bounds, and the
	// median needs the dozens of tightly interleaved pairs the inner loop
	// provides to shrug bursts off. journal_overhead_min_% (the gap between
	// the two variants' quiet-window minima) is reported for comparison.
	run("JournaledPipeline", func(b *testing.B) {
		const pairsPerIter = 3
		var journaledNs int64
		var minBase, minJournaled int64
		var overheads []float64
		var appended int64
		var pairs int
		for i := 0; i < b.N; i++ {
			for k := 0; k < pairsPerIter; k++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "benchjournal")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				t0 := time.Now()
				if _, err := repro.NewPipeline(env.World).Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				t1 := time.Now()
				pipe, j, err := repro.NewJournaledPipeline(env.World, dir, repro.JournalOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pipe.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				if err := j.Close(); err != nil {
					b.Fatal(err)
				}
				t2 := time.Now()
				base, journaled := t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds()
				journaledNs += journaled
				pairs++
				if minBase == 0 || base < minBase {
					minBase = base
				}
				if minJournaled == 0 || journaled < minJournaled {
					minJournaled = journaled
				}
				if base > 0 {
					overheads = append(overheads, float64(journaled-base)/float64(base))
				}
				appended = j.Appended()
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		}
		b.ReportMetric(float64(appended), "journal_records")
		b.ReportMetric(float64(journaledNs)/float64(pairs), "journaled_ns_per_op")
		if len(overheads) > 0 {
			sort.Float64s(overheads)
			mid := len(overheads) / 2
			med := overheads[mid]
			if len(overheads)%2 == 0 {
				med = (overheads[mid-1] + overheads[mid]) / 2
			}
			b.ReportMetric(100*med, "journal_overhead_%")
		}
		if minBase > 0 {
			b.ReportMetric(100*float64(minJournaled-minBase)/float64(minBase), "journal_overhead_min_%")
		}
	})
	// DetermineParallel / AnalyzeParallel isolate the classification tail the
	// overlapped pipeline parallelized: one collected, enriched UR set,
	// re-classified per iteration after a field reset (the reset is a linear
	// walk, negligible against the lookups being measured).
	detSetup := func(b *testing.B) (*core.Config, *core.Determiner, []*core.UR) {
		cfg := env.World.URHunterConfig()
		col := core.NewCollector(cfg)
		correct, err := col.CollectCorrect(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		protective, err := col.CollectProtective(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		urs, err := col.CollectURs(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return cfg, core.NewDeterminer(cfg, correct, protective), urs
	}
	resetURs := func(urs []*core.UR) {
		for _, u := range urs {
			u.Category, u.Reason = core.CategoryUnknown, core.ReasonNone
			u.MaliciousByIntel, u.MaliciousByIDS = false, false
		}
	}
	run("DetermineParallel", func(b *testing.B) {
		_, det, urs := detSetup(b)
		workers := runtime.GOMAXPROCS(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resetURs(urs)
			det.DetermineParallel(urs, workers)
		}
		b.ReportMetric(float64(len(urs))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		b.ReportMetric(float64(workers), "workers")
	})
	run("AnalyzeParallel", func(b *testing.B) {
		cfg, det, urs := detSetup(b)
		suspicious := det.DetermineParallel(urs, runtime.GOMAXPROCS(0))
		analyzer := core.NewAnalyzer(cfg)
		workers := runtime.GOMAXPROCS(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range suspicious {
				u.Category = core.CategoryUnknown
				u.MaliciousByIntel, u.MaliciousByIDS = false, false
			}
			analyzer.AnalyzeParallel(suspicious, workers)
		}
		b.ReportMetric(float64(len(suspicious))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
		b.ReportMetric(float64(workers), "workers")
	})
	// ShardedSweep measures what the coordinator/worker fan-out buys: each
	// iteration runs the single-process pipeline and then full fleet runs
	// (coordinator + N in-process workers over loopback TCP, shard journals,
	// merge, merged-report pipeline) at 1, 2, and 4 workers, all back to
	// back. The simulated fabric answers instantly, which would make the
	// sweep CPU-bound and hide exactly the cost fan-out amortizes, so every
	// config gets a transport that adds an average real 100µs per exchange —
	// the sweep becomes network-bound the way a real fleet run is, and
	// latency-parked workers overlap even on one core. Every sweep runs with
	// Parallelism=1 so the worker count is the only parallelism knob.
	// speedup_vs_1worker_{2w,4w}_x are MEDIANS of the per-iteration
	// fleet(1)/fleet(N) wall-clock ratios (same estimator rationale as
	// JournaledPipeline); merge_overhead_% is the median cost of the whole
	// fleet apparatus — shard journals, TCP coordination, journal merge, and
	// the merged replay — over the plain single-process run, measured at 1
	// worker where no fan-out win can hide it.
	run("ShardedSweep", func(b *testing.B) {
		const (
			exchangeDelay = time.Millisecond
			delayEvery    = 10 // avg 100µs/exchange, paid in accurate 1ms sleeps
		)
		workerCounts := []int{1, 2, 4}
		maxWorkers := workerCounts[len(workerCounts)-1]
		// One world per in-process "process", generated outside the timer:
		// real fleet workers each generate their own same-seed world, and the
		// benchmark reproduces that isolation.
		newWorld := func() *repro.World {
			w, err := repro.GenerateWorld(repro.TinyScale(), *seed)
			if err != nil {
				b.Fatal(err)
			}
			return w
		}
		slowCfg := func(w *repro.World) *core.Config {
			cfg := w.URHunterConfig()
			cfg.Parallelism, cfg.DetermineWorkers = 1, 1
			cfg.Transport = &delayTransport{
				inner: &dnsio.SimTransport{Fabric: cfg.Fabric, Src: cfg.SrcAddr},
				d:     exchangeDelay, every: delayEvery,
			}
			return cfg
		}
		singleWorld := newWorld()
		coordWorld := newWorld()
		workerWorlds := make([]*repro.World, maxWorkers)
		for i := range workerWorlds {
			workerWorlds[i] = newWorld()
		}
		fleetRun := func(nWorkers int) time.Duration {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "benchfleet")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			b.StartTimer()
			t0 := time.Now()
			co, err := fleet.NewCoordinator(slowCfg(coordWorld), fleet.CoordOptions{
				Dir: dir, Shards: nWorkers, StealAfter: time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := co.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			runErr := make(chan error, 1)
			go func() { runErr <- co.Run(ctx) }()
			var wg sync.WaitGroup
			for i := 0; i < nWorkers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					err := fleet.RunWorker(ctx, co.Addr().String(), slowCfg(workerWorlds[i]),
						fleet.WorkerOptions{Name: fmt.Sprintf("bench-%d", i), Parallelism: 1})
					if err != nil {
						b.Error(err)
					}
				}(i)
			}
			wg.Wait()
			if err := <-runErr; err != nil {
				b.Fatal(err)
			}
			if _, err := co.Finish(ctx); err != nil {
				b.Fatal(err)
			}
			return time.Since(t0)
		}
		median := func(xs []float64) float64 {
			sort.Float64s(xs)
			mid := len(xs) / 2
			if len(xs)%2 == 0 {
				return (xs[mid-1] + xs[mid]) / 2
			}
			return xs[mid]
		}
		var speedup2, speedup4, overheads []float64
		var singleNs, fleet1Ns int64
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := core.NewPipeline(slowCfg(singleWorld)).Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			tSingle := time.Since(t0)
			t1 := fleetRun(1)
			t2 := fleetRun(2)
			t4 := fleetRun(4)
			singleNs += tSingle.Nanoseconds()
			fleet1Ns += t1.Nanoseconds()
			if t2 > 0 {
				speedup2 = append(speedup2, float64(t1)/float64(t2))
			}
			if t4 > 0 {
				speedup4 = append(speedup4, float64(t1)/float64(t4))
			}
			if tSingle > 0 {
				overheads = append(overheads, 100*float64(t1-tSingle)/float64(tSingle))
			}
		}
		b.ReportMetric(float64(singleNs)/float64(b.N), "single_ns_per_op")
		b.ReportMetric(float64(fleet1Ns)/float64(b.N), "fleet1_ns_per_op")
		if len(speedup2) > 0 {
			b.ReportMetric(median(speedup2), "speedup_vs_1worker_2w_x")
		}
		if len(speedup4) > 0 {
			b.ReportMetric(median(speedup4), "speedup_vs_1worker_4w_x")
		}
		if len(overheads) > 0 {
			b.ReportMetric(median(overheads), "merge_overhead_%")
		}
	})
	// TransportSweep prices the encrypted transports: one full sweep per
	// transport kind over a fresh same-seed world, with the modeled crypto
	// costs — a handshake per distinct server, a record/header tax per
	// exchange — landing on the fabric's virtual clock. {dot,doh}_overhead_%
	// compare each encrypted sweep's virtual time to the plain-UDP sweep's;
	// the -max-doh-overhead-pct gate bounds the dearer of the two. The modeled
	// arithmetic (DESIGN.md §14) puts DoH at a ~12.5% per-message tax plus an
	// amortized 2-RTT handshake per server, so the 50% CI ceiling has slack
	// for plan-shape drift while still catching a broken amortization (a
	// handshake per message would blow far past it).
	run("TransportSweep", func(b *testing.B) {
		virtual := map[transport.Kind]int64{}
		var dohHandshakes, dohServers float64
		for i := 0; i < b.N; i++ {
			for _, kind := range transport.SweepKinds {
				w, err := repro.GenerateWorld(repro.TinyScale(), *seed)
				if err != nil {
					b.Fatal(err)
				}
				cfg := w.URHunterConfig()
				tr, err := transport.NewSim(kind, cfg.Fabric, cfg.SrcAddr)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Transport = tr
				cfg.TransportKind = string(kind)
				v0 := w.Fabric.VirtualRTT()
				if _, err := core.NewPipeline(cfg).Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				virtual[kind] += int64(w.Fabric.VirtualRTT() - v0)
				if kind == transport.KindDoH {
					if hs, ok := tr.(interface{ Handshakes() int64 }); ok {
						dohHandshakes = float64(hs.Handshakes())
						dohServers = float64(len(w.Nameservers) + len(w.Resolvers.Resolvers))
					}
				}
			}
		}
		udp := virtual[transport.KindUDP]
		if udp > 0 {
			b.ReportMetric(100*float64(virtual[transport.KindDoT]-udp)/float64(udp), "dot_overhead_%")
			b.ReportMetric(100*float64(virtual[transport.KindDoH]-udp)/float64(udp), "doh_overhead_%")
		}
		b.ReportMetric(dohHandshakes, "doh_handshakes")
		b.ReportMetric(dohServers, "doh_servers")
	})
	run("CollectorSweep", func(b *testing.B) {
		cfg := env.World.URHunterConfig()
		var queries int64
		for i := 0; i < b.N; i++ {
			col := core.NewCollector(cfg)
			if _, err := col.CollectURs(context.Background()); err != nil {
				b.Fatal(err)
			}
			queries = col.Queries()
		}
		b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	})
	// ServeVerdicts measures the URWatch DNSBL front-end over one sealed
	// generation of real pipeline verdicts, hammered from all procs with the
	// serving query mix. serve_qps / serve_p99_ms feed the CI serving gates.
	run("ServeVerdicts", func(b *testing.B) {
		res, err := repro.NewPipeline(env.World).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		store := urwatch.NewStore()
		store.Publish(urwatch.SnapshotFromResult(res, 1, time.Unix(0, 0)))
		const apex = dns.Name("feed.test")
		zr := &urwatch.ZoneResponder{Apex: apex, Store: store, Cache: urwatch.NewResponseCache(0)}
		var listedDomain dns.Name
		var listedIP netip.Addr
		for _, u := range res.URs {
			if u.Type == dns.TypeA && len(u.CorrespondingIPs) > 0 {
				listedDomain, listedIP = u.Domain, u.CorrespondingIPs[0]
				break
			}
		}
		if listedDomain == "" {
			b.Fatal("no A-record UR in the bench world")
		}
		revName, ok := urwatch.ReverseIPName(listedIP, apex)
		if !ok {
			b.Fatalf("unreversible IP %s", listedIP)
		}
		queries := []*dns.Message{
			dns.NewQuery(1, urwatch.DomainName(listedDomain, apex), dns.TypeA),
			dns.NewQuery(2, urwatch.DomainName(listedDomain, apex), dns.TypeTXT),
			dns.NewQuery(3, revName, dns.TypeA),
			dns.NewQuery(4, "gen."+apex, dns.TypeTXT),
			dns.NewQuery(5, urwatch.DomainName("unlisted.example", apex), dns.TypeA),
		}
		hist := urwatch.NewLatencyHistogram(100_000)
		src := netip.MustParseAddr("10.7.7.7")
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var i int
			for pb.Next() {
				q := queries[i%len(queries)]
				i++
				t0 := time.Now()
				resp := zr.HandleQuery(src, q)
				hist.Observe(time.Since(t0))
				if resp.Header.RCode == dns.RCodeRefused || resp.Header.RCode == dns.RCodeServFail {
					b.Fatalf("dropped verdict: rcode %s", resp.Header.RCode)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "serve_qps")
		b.ReportMetric(float64(hist.Quantile(0.99).Nanoseconds())/1e6, "serve_p99_ms")
	})
	// FlatStoreFootprint compares the flat generation layout's retained
	// bytes per verdict (analytical accounting over the packed arrays, the
	// figure the -max-bytes-per-verdict gate bounds) against a heap-measured
	// rebuild of the map-era indexes — maps of pointers keyed by string,
	// domain, and address — over the same verdicts. map_bytes_per_verdict is
	// measured, not modeled, so the delta is the refactor's actual win.
	run("FlatStoreFootprint", func(b *testing.B) {
		res, err := repro.NewPipeline(env.World).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		g := urwatch.SnapshotFromResult(res, 1, time.Unix(0, 0))
		if g.Total() == 0 {
			b.Fatal("empty generation")
		}
		verdicts := make([]*urwatch.Verdict, 0, g.Total())
		all := g.All()
		for i := 0; i < all.Len(); i++ {
			verdicts = append(verdicts, all.At(i).Verdict())
		}
		heapDelta := func(build func() any) float64 {
			runtime.GC()
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			ref := build()
			runtime.GC()
			runtime.ReadMemStats(&m1)
			runtime.KeepAlive(ref)
			if m1.HeapAlloc <= m0.HeapAlloc {
				return 0
			}
			return float64(m1.HeapAlloc - m0.HeapAlloc)
		}
		mapBytes := heapDelta(func() any {
			type mapEra struct {
				byKey    map[string]*urwatch.Verdict
				byDomain map[dns.Name][]*urwatch.Verdict
				byIP     map[netip.Addr][]*urwatch.Verdict
			}
			m := &mapEra{
				byKey:    make(map[string]*urwatch.Verdict),
				byDomain: make(map[dns.Name][]*urwatch.Verdict),
				byIP:     make(map[netip.Addr][]*urwatch.Verdict),
			}
			for _, v := range verdicts {
				// The map era retained each sweep's own string data per
				// verdict (no interning) plus fmt.Sprintf'd map keys; clone
				// so none of it aliases the flat generation's arenas.
				cp := *v
				cp.Domain = dns.Name(strings.Clone(string(v.Domain)))
				cp.RData = strings.Clone(v.RData)
				cp.Reason = core.CorrectReason(strings.Clone(string(v.Reason)))
				cp.NSHost = dns.Name(strings.Clone(string(v.NSHost)))
				cp.Provider = strings.Clone(v.Provider)
				cp.IPs = append([]netip.Addr(nil), v.IPs...)
				m.byKey[cp.Key()] = &cp
				m.byDomain[cp.Domain] = append(m.byDomain[cp.Domain], &cp)
				for _, ip := range cp.IPs {
					m.byIP[ip] = append(m.byIP[ip], &cp)
				}
			}
			return m
		})
		for i := 0; i < b.N; i++ {
		}
		b.ReportMetric(float64(g.SizeBytes())/float64(g.Total()), "bytes_per_verdict")
		b.ReportMetric(mapBytes/float64(g.Total()), "map_bytes_per_verdict")
		b.ReportMetric(float64(g.Total()), "verdicts")
	})
	// SnapshotColdStart is the restart SLO: load one generation snapshot
	// from disk, validate it, swap it into a fresh store — what `urwatchd
	// -snapshot-dir` does before opening its listeners. coldstart_ms feeds
	// the -max-coldstart-ms gate.
	run("SnapshotColdStart", func(b *testing.B) {
		res, err := repro.NewPipeline(env.World).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		g := urwatch.SnapshotFromResult(res, 1, time.Unix(0, 0))
		dir, err := os.MkdirTemp("", "benchsnap")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path, err := urwatch.SaveGeneration(dir, g)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loaded, err := urwatch.LoadSnapshotFile(path)
			if err != nil {
				b.Fatal(err)
			}
			store := urwatch.NewStore()
			store.Restore(loaded)
			if store.Current().Total() != g.Total() {
				b.Fatal("restored generation incomplete")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "coldstart_ms")
	})
	run("DNSPackUnpack", func(b *testing.B) {
		m := dns.NewQuery(1, "www.example.com", dns.TypeA).Reply()
		m.Answers = append(m.Answers,
			dns.MustParseRR("www.example.com 300 IN CNAME example.com"),
			dns.MustParseRR("example.com 300 IN A 192.0.2.10"))
		m.Authority = append(m.Authority,
			dns.MustParseRR("example.com 86400 IN NS ns1.hosting.test"),
			dns.MustParseRR("example.com 86400 IN NS ns2.hosting.test"))
		m.Additional = append(m.Additional,
			dns.MustParseRR("ns1.hosting.test 86400 IN A 198.51.100.1"))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := m.Pack()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dns.Unpack(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("FabricExchangeParallel", func(b *testing.B) {
		w := env.World
		q := dns.NewQuery(99, w.Targets[0], dns.TypeA)
		packed, err := q.Pack()
		if err != nil {
			b.Fatal(err)
		}
		ep := simnet.Endpoint{Addr: w.Nameservers[0].Addr, Port: 53}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := w.Fabric.Exchange(w.CollectorAddr, ep, packed, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	run("ClientQueryParallel", func(b *testing.B) {
		w := env.World
		client := dnsio.NewClient(&dnsio.SimTransport{Fabric: w.Fabric, Src: w.CollectorAddr})
		target := w.Targets[0]
		srv := netip.AddrPortFrom(w.Nameservers[0].Addr, 53)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.Query(context.Background(), srv, target, dns.TypeA); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	// Regression gate: the snapshot is written first so a failing run still
	// leaves the numbers behind for diagnosis.
	if *gatePct > 0 {
		got, ok := rep.Benchmarks["JournaledPipeline"].Extra["journal_overhead_%"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: JournaledPipeline reported no journal_overhead_%")
			os.Exit(1)
		}
		if got > *gatePct {
			fmt.Fprintf(os.Stderr, "benchjson: gate: journal_overhead_%% %.2f exceeds the %.2f limit\n", got, *gatePct)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "journal overhead gate: %.2f%% <= %.2f%%\n", got, *gatePct)
	}
	if *minServeQPS > 0 {
		got, ok := rep.Benchmarks["ServeVerdicts"].Extra["serve_qps"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: ServeVerdicts reported no serve_qps")
			os.Exit(1)
		}
		if got < *minServeQPS {
			fmt.Fprintf(os.Stderr, "benchjson: gate: serve_qps %.0f below the %.0f floor\n", got, *minServeQPS)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serve qps gate: %.0f >= %.0f\n", got, *minServeQPS)
	}
	if *maxServeP99 > 0 {
		got, ok := rep.Benchmarks["ServeVerdicts"].Extra["serve_p99_ms"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: ServeVerdicts reported no serve_p99_ms")
			os.Exit(1)
		}
		if got > *maxServeP99 {
			fmt.Fprintf(os.Stderr, "benchjson: gate: serve_p99_ms %.3f exceeds the %.3f limit\n", got, *maxServeP99)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serve p99 gate: %.3fms <= %.3fms\n", got, *maxServeP99)
	}
	if *maxBytesPerVerdict > 0 {
		got, ok := rep.Benchmarks["FlatStoreFootprint"].Extra["bytes_per_verdict"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: FlatStoreFootprint reported no bytes_per_verdict")
			os.Exit(1)
		}
		if got > *maxBytesPerVerdict {
			fmt.Fprintf(os.Stderr, "benchjson: gate: bytes_per_verdict %.0f exceeds the %.0f limit\n", got, *maxBytesPerVerdict)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "flat footprint gate: %.0f B/verdict <= %.0f\n", got, *maxBytesPerVerdict)
	}
	if *maxColdstart > 0 {
		got, ok := rep.Benchmarks["SnapshotColdStart"].Extra["coldstart_ms"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: SnapshotColdStart reported no coldstart_ms")
			os.Exit(1)
		}
		if got > *maxColdstart {
			fmt.Fprintf(os.Stderr, "benchjson: gate: coldstart_ms %.3f exceeds the %.3f limit\n", got, *maxColdstart)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cold-start gate: %.3fms <= %.3fms\n", got, *maxColdstart)
	}
	if *minShardedSpeedup > 0 {
		got, ok := rep.Benchmarks["ShardedSweep"].Extra["speedup_vs_1worker_2w_x"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: ShardedSweep reported no speedup_vs_1worker_2w_x")
			os.Exit(1)
		}
		if got < *minShardedSpeedup {
			fmt.Fprintf(os.Stderr, "benchjson: gate: speedup_vs_1worker_2w_x %.2f below the %.2f floor\n", got, *minShardedSpeedup)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sharded speedup gate: %.2fx >= %.2fx\n", got, *minShardedSpeedup)
	}
	if *maxMergeOverhead > 0 {
		got, ok := rep.Benchmarks["ShardedSweep"].Extra["merge_overhead_%"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: ShardedSweep reported no merge_overhead_%")
			os.Exit(1)
		}
		if got > *maxMergeOverhead {
			fmt.Fprintf(os.Stderr, "benchjson: gate: merge_overhead_%% %.2f exceeds the %.2f limit\n", got, *maxMergeOverhead)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "merge overhead gate: %.2f%% <= %.2f%%\n", got, *maxMergeOverhead)
	}
	if *maxDoHOverhead > 0 {
		got, ok := rep.Benchmarks["TransportSweep"].Extra["doh_overhead_%"]
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: gate: TransportSweep reported no doh_overhead_%")
			os.Exit(1)
		}
		if got > *maxDoHOverhead {
			fmt.Fprintf(os.Stderr, "benchjson: gate: doh_overhead_%% %.2f exceeds the %.2f limit\n", got, *maxDoHOverhead)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "doh overhead gate: %.2f%% <= %.2f%%\n", got, *maxDoHOverhead)
	}
}
