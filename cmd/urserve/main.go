// Command urserve exposes nameservers from a generated world on real
// UDP/TCP sockets, so any stock DNS client (dig, kdig, the cmd/dnsq tool)
// can query the simulated Internet — including the attacker's undelegated
// records.
//
// Usage:
//
//	urserve [-scale tiny] [-seed N] [-provider ClouDNS] [-listen 127.0.0.1:5533] [-n 1]
//
// Example session:
//
//	$ go run ./cmd/urserve -provider ClouDNS &
//	$ dig @127.0.0.1 -p 5533 ibm.com A        # returns the Specter C2 UR
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"syscall"
	"time"

	"repro"
	"repro/internal/urwatch"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	providerName := flag.String("provider", "ClouDNS", "provider whose nameservers to expose")
	listen := flag.String("listen", "127.0.0.1:5533", "base listen address (port increments per server)")
	count := flag.Int("n", 1, "how many of the provider's nameservers to expose")
	flag.Parse()

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "urserve: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	world, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urserve: %v\n", err)
		os.Exit(1)
	}
	provider, ok := world.ProviderByName[*providerName]
	if !ok {
		fmt.Fprintf(os.Stderr, "urserve: unknown provider %q; available:\n", *providerName)
		for _, p := range world.Providers {
			fmt.Fprintf(os.Stderr, "  %s\n", p.Name)
		}
		os.Exit(2)
	}

	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urserve: bad listen address: %v\n", err)
		os.Exit(2)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urserve: bad port: %v\n", err)
		os.Exit(2)
	}

	nameservers := provider.Nameservers()
	if *count > len(nameservers) {
		*count = len(nameservers)
	}
	// One serve group holds every listener: a port collision partway through
	// the increment loop drains the already-started servers and exits with a
	// clean error instead of leaking them, and the shutdown path below
	// drains in-flight queries before the process exits.
	var group urwatch.ServeGroup
	for i := 0; i < *count; i++ {
		ns := nameservers[i]
		addr := net.JoinHostPort(host, strconv.Itoa(port+i))
		srv, err := group.StartDNS(ns.Server(), addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s (%s in the simulation) now answering on udp/tcp %s\n",
			ns.Host.String(), ns.Addr, srv.UDPAddr())
	}
	fmt.Printf("\n%d hosted domains on %s; try:\n", len(provider.HostedDomains()), provider.Name)
	fmt.Printf("  dig @%s -p %d ibm.com A\n", host, port)
	fmt.Printf("  dig @%s -p %d speedtest.net TXT\n", host, port)
	fmt.Println("\nctrl-c to stop (drains in-flight queries; second ctrl-c hard-exits)")

	urwatch.AwaitSignal(context.Background(), os.Interrupt, syscall.SIGTERM)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := group.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "urserve: drain: %v\n", err)
		os.Exit(1)
	}
}
