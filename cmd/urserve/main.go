// Command urserve exposes nameservers from a generated world on real
// UDP/TCP sockets, so any stock DNS client (dig, kdig, the cmd/dnsq tool)
// can query the simulated Internet — including the attacker's undelegated
// records.
//
// Usage:
//
//	urserve [-scale tiny] [-seed N] [-provider ClouDNS] [-listen 127.0.0.1:5533] [-n 1]
//
// Example session:
//
//	$ go run ./cmd/urserve -provider ClouDNS &
//	$ dig @127.0.0.1 -p 5533 ibm.com A        # returns the Specter C2 UR
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"repro"
	"repro/internal/dnsio"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	providerName := flag.String("provider", "ClouDNS", "provider whose nameservers to expose")
	listen := flag.String("listen", "127.0.0.1:5533", "base listen address (port increments per server)")
	count := flag.Int("n", 1, "how many of the provider's nameservers to expose")
	flag.Parse()

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "urserve: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	world, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urserve: %v\n", err)
		os.Exit(1)
	}
	provider, ok := world.ProviderByName[*providerName]
	if !ok {
		fmt.Fprintf(os.Stderr, "urserve: unknown provider %q; available:\n", *providerName)
		for _, p := range world.Providers {
			fmt.Fprintf(os.Stderr, "  %s\n", p.Name)
		}
		os.Exit(2)
	}

	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urserve: bad listen address: %v\n", err)
		os.Exit(2)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urserve: bad port: %v\n", err)
		os.Exit(2)
	}

	nameservers := provider.Nameservers()
	if *count > len(nameservers) {
		*count = len(nameservers)
	}
	var servers []*dnsio.Server
	for i := 0; i < *count; i++ {
		ns := nameservers[i]
		srv := dnsio.NewServer(ns.Server())
		addr := net.JoinHostPort(host, strconv.Itoa(port+i))
		if err := srv.Start(addr); err != nil {
			fmt.Fprintf(os.Stderr, "urserve: listen %s: %v\n", addr, err)
			os.Exit(1)
		}
		servers = append(servers, srv)
		fmt.Printf("%s (%s in the simulation) now answering on udp/tcp %s\n",
			ns.Host.String(), ns.Addr, srv.UDPAddr())
	}
	fmt.Printf("\n%d hosted domains on %s; try:\n", len(provider.HostedDomains()), provider.Name)
	fmt.Printf("  dig @%s -p %d ibm.com A\n", host, port)
	fmt.Printf("  dig @%s -p %d speedtest.net TXT\n", host, port)
	fmt.Println("\nctrl-c to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	for _, srv := range servers {
		_ = srv.Close()
	}
}
