// Command urcoord coordinates a sharded multi-process sweep: it cuts the
// probe plan of a generated world into contiguous shard ranges, serves them
// to urhunter workers (started with -worker <this address>) over TCP,
// steals straggler tails for idle workers, survives worker death (shards
// re-issue from their journal checkpoints) and its own restart (-dir keeps
// the assignment book), then merges the shard journals and prints the same
// report a single-process urhunter run of the same plan would — byte for
// byte.
//
// Usage:
//
//	urcoord -dir DIR [-scale tiny|small|paper] [-seed N] [-chaos]
//	        [-listen ADDR] [-shards N] [-steal-after D] [-min-steal-units N]
//	        [-checkpoint-every N] [-top N] [-domains N]
//	        [-json FILE] [-csv FILE] [-all] [-pprof ADDR]
//
// Workers must be started with the same -scale, -seed, and -chaos so they
// sweep the identical plan; the coordinator rejects any that don't.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/fleet"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	chaos := flag.Bool("chaos", false, "inject the deterministic fault pattern (workers must match)")
	listen := flag.String("listen", "127.0.0.1:9555", "TCP address workers connect to")
	dir := flag.String("dir", "", "working directory: shard journals + assignment book (required)")
	shards := flag.Int("shards", 2, "initial shard count (work stealing rebalances)")
	stealAfter := flag.Duration("steal-after", 2*time.Second, "how long a shard runs before its tail may be stolen")
	minSteal := flag.Int("min-steal-units", 1, "smallest tail worth stealing")
	ckptEvery := flag.Int("checkpoint-every", 0, "shard journal checkpoint interval (0 = default)")
	top := flag.Int("top", 5, "providers shown in the Figure 2 breakdown")
	topDomains := flag.Int("domains", 10, "top malicious domains listed")
	jsonOut := flag.String("json", "", "write the classified records as JSON to this file")
	csvOut := flag.String("csv", "", "write the classified records as CSV to this file")
	allRecords := flag.Bool("all", false, "export every UR, not only the suspicious set")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flag.Parse()

	log.SetFlags(log.Ltime)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "urcoord: -dir is required")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() { log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil)) }()
	}

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "urcoord: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	start := time.Now()
	log.Printf("generating %s world (seed %d)...", scale.Name, *seed)
	world, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urcoord: generate: %v\n", err)
		os.Exit(1)
	}
	if *chaos {
		n := repro.ApplyDeterministicChaos(world)
		log.Printf("chaos: %d nameservers faulted (servfail, blackhole, wrong-id)", n)
	}
	cfg := world.URHunterConfig()
	log.Printf("world ready in %v: %d server units, plan %016x",
		time.Since(start).Round(time.Millisecond), cfg.PlanUnits(), cfg.PlanHash())

	co, err := fleet.NewCoordinator(cfg, fleet.CoordOptions{
		Dir: *dir, Shards: *shards, CheckpointEvery: *ckptEvery,
		StealAfter: *stealAfter, MinStealUnits: *minSteal,
		Logf: log.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "urcoord: %v\n", err)
		os.Exit(1)
	}
	if err := co.Listen(*listen); err != nil {
		fmt.Fprintf(os.Stderr, "urcoord: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "urcoord: signal received, shutting down (assignment book kept; rerun to resume)")
		cancel()
		<-sig
		os.Exit(130)
	}()

	start = time.Now()
	if err := co.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "urcoord: %v\n", err)
		os.Exit(1)
	}
	log.Printf("all shards done in %v, merging", time.Since(start).Round(time.Millisecond))

	res, err := co.Finish(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urcoord: merge: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(repro.RenderCategorySummary(res))
	fmt.Println()
	fmt.Print(repro.RenderTable1(res))
	fmt.Println()
	fmt.Print(repro.RenderFigure2(res, *top))
	fmt.Println()
	fmt.Print(repro.RenderFigure3(res))
	fmt.Println()
	fmt.Println("Top malicious domains:")
	for _, l := range repro.TopMaliciousDomains(res, *topDomains) {
		fmt.Println("  " + l)
	}

	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w *os.File) error {
			return repro.WriteJSON(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urcoord: json export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote JSON export to %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, func(w *os.File) error {
			return repro.WriteCSV(w, res, !*allRecords)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "urcoord: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CSV export to %s\n", *csvOut)
	}
}

// writeFile creates path and runs the writer against it.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
