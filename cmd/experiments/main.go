// Command experiments regenerates the paper's tables and figures
// (DESIGN.md E1–E14) and prints paper-vs-measured findings. The output of
// `experiments -scale small` is the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale tiny|small|paper] [-seed N] [-exp id,id|all] [-list]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	scaleName := flag.String("scale", "small", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	expList := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	mdOut := flag.String("md", "", "also write the findings as Markdown to this file")
	flag.Parse()

	if *list {
		for _, e := range repro.Experiments() {
			fmt.Printf("%-15s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	var selected []repro.Experiment
	if *expList == "all" {
		selected = repro.Experiments()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, ok := repro.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	fmt.Printf("generating %s world (seed %d) and running URHunter...\n", scale.Name, *seed)
	env, err := repro.NewEnv(context.Background(), scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("environment ready in %v: %d URs collected, %d suspicious, %d queries\n\n",
		time.Since(start).Round(time.Millisecond),
		len(env.Result.URs), len(env.Result.Suspicious), env.Result.Queries)

	failed := 0
	var findings []*repro.Findings
	for _, e := range selected {
		f, err := e.Run(context.Background(), env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		findings = append(findings, f)
		fmt.Print(f.Render())
		fmt.Println()
	}
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(repro.RenderFindingsMarkdown(findings)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write markdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Markdown findings to %s\n", *mdOut)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
