// Command worldgen generates a measurement world and dumps its inventory:
// providers with their fleets and policies, the attacker campaign's
// outcomes, the malware corpus, and optionally a hosted zone's contents.
//
// Usage:
//
//	worldgen [-scale tiny|small|paper] [-seed N] [-zone domain] [-provider name]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/dns"
)

func main() {
	scaleName := flag.String("scale", "tiny", "world scale: tiny, small, or paper")
	seed := flag.Int64("seed", 42, "world generation seed")
	zoneDomain := flag.String("zone", "", "dump hosted zones for this domain")
	providerName := flag.String("provider", "", "restrict the -zone dump to one provider")
	flag.Parse()

	scale, ok := repro.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "worldgen: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	w, err := repro.GenerateWorld(scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}

	if *zoneDomain != "" {
		dumpZones(w, dns.CanonicalName(*zoneDomain), *providerName)
		return
	}

	fmt.Printf("world %q (seed %d)\n", scale.Name, *seed)
	fmt.Printf("  targets:        %d (tranco list of %d)\n", len(w.Targets), w.Tranco.Len())
	fmt.Printf("  nameservers:    %d across %d providers\n", len(w.Nameservers), len(w.Providers))
	fmt.Printf("  open resolvers: %d\n", len(w.Resolvers.Resolvers))
	fmt.Printf("  attacker IPs:   %d evidenced + %d clean\n", len(w.EvidencedIPs), len(w.CleanIPs))
	fmt.Printf("  malware corpus: %d samples (%d case-study)\n", len(w.Samples),
		len(w.Case.DarkIoTSamples)+len(w.Case.SpecterSamples)+len(w.Case.SPFSamples))
	fmt.Printf("  plant campaign: %d attempted, %d created\n", w.Plants.Attempted, w.Plants.Created)
	if len(w.Plants.Refusals) > 0 {
		fmt.Println("  refusals by providers:")
		type kv struct {
			reason string
			n      int
		}
		var rs []kv
		for r, n := range w.Plants.Refusals {
			rs = append(rs, kv{string(r), n})
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].n > rs[j].n })
		for _, r := range rs {
			fmt.Printf("    %5d  %s\n", r.n, r.reason)
		}
	}

	fmt.Println("\nproviders:")
	for _, p := range w.Providers {
		extra := ""
		if p.ProtectiveRecords {
			extra += " protective"
		}
		if p.OpenRecursive {
			extra += " open-recursive"
		}
		if p.CDNEdges {
			extra += " cdn"
		}
		fmt.Printf("  %-16s %3d servers, %-13s ns-policy, hosts %d domains%s\n",
			p.Name, len(p.Nameservers()), p.NSAllocation.String(),
			len(p.HostedDomains()), extra)
	}
}

func dumpZones(w *repro.World, domain dns.Name, providerName string) {
	found := false
	for _, p := range w.Providers {
		if providerName != "" && p.Name != providerName {
			continue
		}
		for _, hz := range p.ZonesFor(domain) {
			found = true
			fmt.Printf("; provider %s, account %s, served=%v, verified=%v\n",
				p.Name, hz.Account.ID, hz.Served(), hz.Verified)
			fmt.Print(hz.Zone.Serialize())
			fmt.Println()
		}
	}
	if !found {
		fmt.Printf("no hosted zones for %s\n", domain.String())
	}
}
