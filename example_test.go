package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// ExampleGenerateWorld shows the minimal measurement loop: build a world,
// run URHunter, inspect the classification.
func ExampleGenerateWorld() {
	world, err := repro.GenerateWorld(repro.TinyScale(), 42)
	if err != nil {
		log.Fatal(err)
	}
	result, err := repro.RunURHunter(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}
	rows := result.Table1()
	total := rows[2]
	fmt.Printf("suspicious URs found: %v\n", total.URs > 0)
	fmt.Printf("malicious URs found: %v\n", total.MaliciousURs > 0)
	fmt.Printf("zero-FN types: %d\n", len(rows))
	// Output:
	// suspicious URs found: true
	// malicious URs found: true
	// zero-FN types: 3
}

// ExampleExperimentByID runs a single named experiment, the way
// cmd/experiments does.
func ExampleExperimentByID() {
	exp, ok := repro.ExperimentByID("fnrate")
	if !ok {
		log.Fatal("unknown experiment")
	}
	env, err := repro.NewEnv(context.Background(), repro.TinyScale(), 42)
	if err != nil {
		log.Fatal(err)
	}
	findings, err := exp.Run(context.Background(), env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("false negatives: %.0f\n", findings.Metrics["false_negatives"])
	// Output:
	// false negatives: 0
}
