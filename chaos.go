package repro

import (
	"repro/internal/dnsio"
	"repro/internal/simnet"
)

// ApplyDeterministicChaos injects a fixed fault pattern into a generated
// world: the first nameserver answers SERVFAIL, the second blackholes every
// query, the third corrupts every response's transaction ID. All three
// faults are sequence-independent — the outcome of a probe depends only on
// which server it hits, never on how many queries ran before it — so any
// two processes that generate the same world (same scale, same seed) and
// call this produce identical sweep results. That is what lets a sharded
// fleet run under chaos and still merge to a report byte-identical to a
// single-process reference.
//
// Worlds with fewer than three nameservers get the prefix that fits. The
// returned count is how many servers were faulted.
func ApplyDeterministicChaos(w *World) int {
	profiles := []simnet.FaultProfile{
		{ServFail: true},
		{Blackhole: true},
		{WrongIDRate: 1},
	}
	n := 0
	for i, p := range profiles {
		if i >= len(w.Nameservers) {
			break
		}
		dnsio.SetSimFault(w.Fabric, w.Nameservers[i].Addr, p)
		n++
	}
	return n
}
