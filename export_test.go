package repro

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteReadJSON(t *testing.T) {
	env := sharedEnv(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, env.Result, true); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Suspicious != len(env.Result.Suspicious) {
		t.Errorf("suspicious = %d, want %d", sum.Suspicious, len(env.Result.Suspicious))
	}
	if len(sum.Records) != sum.Suspicious {
		t.Errorf("records = %d", len(sum.Records))
	}
	if sum.Total != len(env.Result.URs) {
		t.Errorf("total = %d", sum.Total)
	}
	if len(sum.Table1) != 3 {
		t.Errorf("table1 rows = %d", len(sum.Table1))
	}
	sawMalicious := false
	for _, r := range sum.Records {
		if r.Category == "malicious" {
			sawMalicious = true
			if !r.ByIntel && !r.ByIDS {
				t.Errorf("malicious record without evidence flags: %+v", r)
			}
		}
		if r.Domain == "" || r.Provider == "" || r.Nameserver == "" {
			t.Errorf("incomplete record: %+v", r)
		}
	}
	if !sawMalicious {
		t.Error("no malicious records exported")
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestWriteJSONAllRecords(t *testing.T) {
	env := sharedEnv(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, env.Result, false); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Records) != len(env.Result.URs) {
		t.Errorf("records = %d, want all %d", len(sum.Records), len(env.Result.URs))
	}
}

func TestWriteCSV(t *testing.T) {
	env := sharedEnv(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, env.Result, true); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(env.Result.Suspicious)+1 {
		t.Fatalf("rows = %d, want %d+header", len(rows), len(env.Result.Suspicious))
	}
	if rows[0][0] != "domain" || rows[0][7] != "category" {
		t.Errorf("header = %v", rows[0])
	}
	for _, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			t.Fatalf("row width = %d", len(row))
		}
		switch row[7] {
		case "malicious", "unknown":
		default:
			t.Errorf("suspicious export contains category %q", row[7])
		}
	}
}
