package repro

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/threatintel"
)

// pct renders a count as "n (p%)" against a total.
func pct(n, total int) string {
	if total == 0 {
		return fmt.Sprintf("%d (—)", n)
	}
	return fmt.Sprintf("%d (%.2f%%)", n, 100*float64(n)/float64(total))
}

// RenderTable1 formats the suspicious-record overview like the paper's
// Table 1.
func RenderTable1(res *Result) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Overview of suspicious undelegated records\n")
	fmt.Fprintf(&sb, "%-6s %-18s %-18s %-16s %-22s %-18s\n",
		"Cat", "#Domain (mal)", "#Nameserver (mal)", "#Provider (mal)", "#UR (mal)", "#IP (mal)")
	for _, row := range res.Table1() {
		fmt.Fprintf(&sb, "%-6s %-18s %-18s %-16s %-22s %-18s\n",
			row.Label,
			fmt.Sprintf("%d / %s", row.Domains, pct(row.MaliciousDomains, row.Domains)),
			fmt.Sprintf("%d / %s", row.Nameservers, pct(row.MaliciousNameservers, row.Nameservers)),
			fmt.Sprintf("%d / %s", row.Providers, pct(row.MaliciousProviders, row.Providers)),
			fmt.Sprintf("%d / %s", row.URs, pct(row.MaliciousURs, row.URs)),
			fmt.Sprintf("%d / %s", row.IPs, pct(row.MaliciousIPs, row.IPs)))
	}
	return sb.String()
}

// RenderFigure2 formats the per-provider category breakdown like Figure 2.
func RenderFigure2(res *Result, topN int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: UR categories among the top %d vendors\n", topN)
	for _, b := range res.Figure2(topN) {
		total := b.Total()
		fmt.Fprintf(&sb, "%-16s total=%-8d correct=%.2f protective=%.2f unknown=%.2f malicious=%.2f\n",
			b.Provider, total,
			ratio(b.Correct, total), ratio(b.Protective, total),
			ratio(b.Unknown, total), ratio(b.Malicious, total))
	}
	return sb.String()
}

func ratio(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// RenderFigure3 formats the four malicious-IP analyses of Figure 3.
func RenderFigure3(res *Result) string {
	var sb strings.Builder
	f3a := res.Figure3a()
	total := f3a.Total()
	sb.WriteString("Figure 3(a): why IP addresses were labeled\n")
	fmt.Fprintf(&sb, "  intel-only %s  ids-only %s  both %s\n",
		pct(f3a.IntelOnly, total), pct(f3a.IDSOnly, total), pct(f3a.Both, total))

	sb.WriteString("Figure 3(b): # vendors flagging each malicious IP\n")
	f3b := res.Figure3b()
	totalB := 0
	for _, n := range f3b {
		totalB += n
	}
	for _, bucket := range []string{"1-2", "3-4", "5-6", "7-11"} {
		fmt.Fprintf(&sb, "  %-5s %s\n", bucket, pct(f3b[bucket], totalB))
	}

	sb.WriteString("Figure 3(c): malicious activities in IDS alerts\n")
	f3c := res.Figure3c()
	totalC := 0
	for _, n := range f3c {
		totalC += n
	}
	for _, class := range ids.AllClasses {
		fmt.Fprintf(&sb, "  %-18s %s\n", class, pct(f3c[class], totalC))
	}

	sb.WriteString("Figure 3(d): security-vendor tags (multi-tag per IP)\n")
	f3d := res.Figure3d()
	intelIPs := f3a.IntelOnly + f3a.Both
	for _, tag := range threatintel.AllTags {
		fmt.Fprintf(&sb, "  %-8s %s\n", tag, pct(f3d[tag], intelIPs))
	}
	return sb.String()
}

// RenderCategorySummary prints overall classification counts.
func RenderCategorySummary(res *Result) string {
	counts := res.CategoryCounts()
	total := len(res.URs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Classified %d unique URs (%d suspicious) from %d queries\n",
		total, len(res.Suspicious), res.Queries)
	for _, cat := range []core.Category{core.CategoryCorrect, core.CategoryProtective,
		core.CategoryUnknown, core.CategoryMalicious} {
		fmt.Fprintf(&sb, "  %-11s %s\n", cat, pct(counts[cat], total))
	}
	return sb.String()
}

// TopMaliciousDomains lists the malicious-UR domains with the most records.
func TopMaliciousDomains(res *Result, n int) []string {
	count := map[string]int{}
	for _, u := range res.Suspicious {
		if u.Category == core.CategoryMalicious {
			count[string(u.Domain)]++
		}
	}
	type kv struct {
		d string
		n int
	}
	var all []kv
	for d, c := range count {
		all = append(all, kv{d, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].d < all[j].d
	})
	var out []string
	for i, e := range all {
		if i >= n {
			break
		}
		out = append(out, fmt.Sprintf("%s (%d malicious URs)", e.d, e.n))
	}
	return out
}

// RenderFindingsMarkdown formats a batch of experiment findings as a
// Markdown document (the `experiments -md` output).
func RenderFindingsMarkdown(findings []*Findings) string {
	var sb strings.Builder
	sb.WriteString("# URHunter reproduction findings\n")
	for _, f := range findings {
		fmt.Fprintf(&sb, "\n## %s — %s\n\n", f.ID, f.Title)
		if f.Paper != "" {
			fmt.Fprintf(&sb, "**Paper:** %s\n\n", f.Paper)
		}
		sb.WriteString("```\n")
		for _, l := range f.Lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		sb.WriteString("```\n")
		if len(f.Metrics) > 0 {
			keys := make([]string, 0, len(f.Metrics))
			for k := range f.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString("\n| metric | value |\n|---|---|\n")
			for _, k := range keys {
				fmt.Fprintf(&sb, "| %s | %.4g |\n", k, f.Metrics[k])
			}
		}
	}
	return sb.String()
}
